package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// batchTestServer serves echo (returns its params), double (returns 2*n),
// and boom (always errors).
func batchTestServer(t testing.TB) (*Server, string) {
	t.Helper()
	srv := NewServer("batch-test")
	srv.Handle("echo", func(params json.RawMessage) (any, error) {
		return params, nil
	})
	srv.Handle("double", func(params json.RawMessage) (any, error) {
		var n float64
		if err := json.Unmarshal(params, &n); err != nil {
			return nil, err
		}
		return 2 * n, nil
	})
	srv.Handle("boom", func(json.RawMessage) (any, error) {
		return nil, errors.New("kaboom")
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, addr.String()
}

func TestCallBatchRoundTrip(t *testing.T) {
	_, addr := batchTestServer(t)
	c, err := Dial(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	var echoed map[string]any
	var doubled float64
	calls := []BatchCall{
		{Method: "echo", Params: json.RawMessage(`{"a":1}`), Result: &echoed},
		{Method: "double", Params: json.RawMessage(`21`), Result: &doubled},
		{Method: "boom"},
		{Method: "nope"},
	}
	if err := c.CallBatch(calls); err != nil {
		t.Fatalf("CallBatch: %v", err)
	}
	if calls[0].Err != nil || calls[1].Err != nil {
		t.Fatalf("healthy items errored: %v, %v", calls[0].Err, calls[1].Err)
	}
	if echoed["a"] != float64(1) {
		t.Errorf("echo result = %v", echoed)
	}
	if doubled != 42 {
		t.Errorf("double result = %v, want 42", doubled)
	}
	var remote *RemoteError
	if !errors.As(calls[2].Err, &remote) || remote.Message != "kaboom" {
		t.Errorf("boom item error = %v, want RemoteError kaboom", calls[2].Err)
	}
	if !errors.As(calls[3].Err, &remote) || !strings.Contains(remote.Message, "unknown method") {
		t.Errorf("nope item error = %v, want unknown method", calls[3].Err)
	}
}

func TestCallBatchEmptyAndInterleaved(t *testing.T) {
	_, addr := batchTestServer(t)
	c, err := Dial(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	if err := c.CallBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	// Batches and single calls interleave on one connection: request ids
	// keep matching their responses.
	for i := 0; i < 3; i++ {
		var out float64
		if err := c.Call("double", 10, &out); err != nil || out != 20 {
			t.Fatalf("Call double: %v (out=%v)", err, out)
		}
		var batchOut float64
		calls := []BatchCall{{Method: "double", Params: json.RawMessage(`5`), Result: &batchOut}}
		if err := c.CallBatch(calls); err != nil || calls[0].Err != nil || batchOut != 10 {
			t.Fatalf("CallBatch double: %v / %v (out=%v)", err, calls[0].Err, batchOut)
		}
	}
}

func TestCallBatchValidation(t *testing.T) {
	_, addr := batchTestServer(t)
	c, err := Dial(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	if err := c.CallBatch([]BatchCall{{Method: ""}}); err == nil {
		t.Error("empty method accepted")
	}
	if err := c.CallBatch([]BatchCall{{Method: MethodBatch}}); err == nil {
		t.Error("nested batch accepted")
	}
	// Rejected batches must not poison the connection.
	var out float64
	if err := c.Call("double", 3, &out); err != nil || out != 6 {
		t.Fatalf("call after rejected batch: %v (out=%v)", err, out)
	}
}

func TestServerRejectsBatchHandler(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering rpc.batch did not panic")
		}
	}()
	NewServer("x").Handle(MethodBatch, func(json.RawMessage) (any, error) { return nil, nil })
}

func TestServerNestedBatchRejectedPerItem(t *testing.T) {
	_, addr := batchTestServer(t)
	c, err := Dial(addr, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	// Hand-craft a nested batch: the outer item names rpc.batch, which the
	// client-side guard would refuse, so go through Call directly.
	var raw json.RawMessage
	err = c.Call(MethodBatch, []map[string]any{{"id": 0, "method": MethodBatch}}, &raw)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	var results []map[string]any
	if err := json.Unmarshal(raw, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !strings.Contains(fmt.Sprint(results[0]["error"]), "nested") {
		t.Errorf("nested batch result = %v, want per-item nested error", results)
	}
}

func TestManagedCallBatch(t *testing.T) {
	srv, addr := batchTestServer(t)
	m := NewManagedClient(addr, "test", Options{
		CallTimeout:      500 * time.Millisecond,
		ReconnectBackoff: time.Nanosecond, // no fast-fail window between attempts
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // once open, stays open for the test
		Rand:             func() float64 { return 0 },
	})
	defer func() { _ = m.Close() }()

	var doubled float64
	calls := []BatchCall{
		{Method: "double", Params: json.RawMessage(`4`), Result: &doubled},
		{Method: "boom"},
	}
	if err := m.CallBatch(calls); err != nil {
		t.Fatalf("CallBatch: %v", err)
	}
	if doubled != 8 {
		t.Errorf("double = %v, want 8", doubled)
	}
	// A per-item handler error proves the node alive: no breaker movement.
	if h := m.Health(); h.State != BreakerClosed || h.ConsecutiveFailures != 0 {
		t.Errorf("item error counted as transport failure: %+v", h)
	}

	// A transport failure on the batch path counts like one on Call.
	_ = srv.Close()
	for i := 0; i < 2; i++ {
		if err := m.CallBatch(calls); err == nil {
			t.Fatal("batch against closed server succeeded")
		}
	}
	if h := m.Health(); h.State != BreakerOpen {
		t.Errorf("breaker = %v after repeated batch transport failures, want open", h.State)
	}
	if err := m.CallBatch(calls); !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("open-breaker batch error = %v, want ErrBreakerOpen", err)
	}
}

func TestAppendBatchRequestEscapes(t *testing.T) {
	body, err := appendBatchRequest(nil, 7, []BatchCall{
		{Method: `we"ird\m` + "\n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var req struct {
		ID     uint64 `json:"id"`
		Method string `json:"method"`
		Params []struct {
			ID     uint64 `json:"id"`
			Method string `json:"method"`
		} `json:"params"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatalf("encoded frame is not valid JSON: %v\n%s", err, body)
	}
	if req.ID != 7 || req.Method != MethodBatch {
		t.Errorf("envelope = %+v", req)
	}
	if len(req.Params) != 1 || req.Params[0].Method != `we"ird\m`+"\n" {
		t.Errorf("method did not round-trip: %+v", req.Params)
	}
}
