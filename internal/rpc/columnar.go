package rpc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Columnar, delta-encoded wire format for metric streams. A stream opens
// with one schema frame naming every column once (method, node, column
// groups); after that each tick ships a data frame of zigzag-varint deltas
// of the IEEE-754 bit patterns against the previous tick, with run-length
// encoding over unchanged columns. Metric vectors have a fixed per-node
// layout and change slowly tick-to-tick, so a steady-state frame is a few
// bytes per changed column and an idle tick costs a handful of bytes total —
// versus ~20 bytes per column for the JSON path, every tick.
//
// Frame grammar (one transport body may concatenate several frames):
//
//	schema := 0x01 version:uvarint method:str node:str ngroups:uvarint group*
//	group  := name:str ncols:uvarint (colname:str coltype:u8)*
//	data   := 0x02 seq:uvarint nrows:uvarint row*
//	row    := flags:u8 presence:bitmap[ceil(ngroups/8)] tdelta:zigzag group-runs*
//	runs   := (skip:uvarint (take:uvarint delta:zigzag{take})?)*   — per PRESENT group
//	str    := len:uvarint bytes
//
// Delta state: both ends keep one previous bit pattern per column and the
// previous row time. A row's time is a zigzag varint delta in nanoseconds
// against the previous row (or frame). Only columns of PRESENT groups are
// coded and have their previous-value state advanced; an absent group's
// state is untouched on both sides, so presence can toggle tick-to-tick
// without resynchronizing. Values travel as bit-pattern deltas, never as
// parsed numbers, so NaN, infinities, and denormals round-trip bit-exact —
// which is what makes the columnar path byte-identical to JSON at the sink.
//
// Sequence numbers are per-stream and strictly consecutive; a gap means the
// receiver lost a frame and must error rather than silently apply deltas to
// stale state. A schema frame resets sequence and delta state, which is how
// a reconnected stream resynchronizes: server-side stream state lives on the
// connection, so a fresh connection re-sends the schema first.

// Columnar frame kinds.
const (
	frameKindSchema = 0x01
	frameKindData   = 0x02
)

// columnarVersion is the codec version carried in every schema frame.
const columnarVersion = 1

// Decoder hardening bounds: a hostile frame must fail fast instead of
// driving large allocations. Real streams are a few groups of at most a few
// hundred columns and one or a few rows per frame.
const (
	maxSchemaString   = 4096
	maxSchemaGroups   = 4096
	maxSchemaColumns  = 1 << 20
	maxFrameRows      = 1 << 16
	maxFrameCells     = 1 << 22 // rows x columns materialized per frame
	maxStreamsPerConn = 64
)

// ColumnType identifies a column's value encoding. Only float64 exists
// today; the byte is on the wire so new types can be added without a
// protocol bump.
type ColumnType byte

// ColumnFloat64 is an IEEE-754 double transported as bit-pattern deltas.
const ColumnFloat64 ColumnType = 0

// ColumnGroup names one contiguous block of columns that is present or
// absent as a unit in each row (e.g. the sadc node vector, or one
// interface's net counters).
type ColumnGroup struct {
	Name    string
	Columns []string
}

// StreamSchema describes a metric stream: the originating method, the node
// it covers, and the column groups of every row.
type StreamSchema struct {
	Method string
	Node   string
	Groups []ColumnGroup
}

func (s *StreamSchema) numCols() int {
	n := 0
	for _, g := range s.Groups {
		n += len(g.Columns)
	}
	return n
}

// StreamRow is one decoded row. Present has one entry per schema group;
// Values is the flat concatenation of every group's columns (absent groups
// keep their last transmitted values — consult Present before using them).
// The slices are owned by the decoder and valid until the next Decode.
type StreamRow struct {
	TimeNanos int64
	Warmup    bool
	Present   []bool
	Values    []float64
}

const rowFlagWarmup = 1 << 0

func zigzagEncode(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }
func zigzagDecode(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendColumnarString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ColumnarEncoder encodes a stream's frames. It owns the per-column delta
// state; Finish on the first tick emits the schema frame ahead of the data
// frame, and every buffer is reused so the steady-state encode path performs
// zero allocations.
type ColumnarEncoder struct {
	schema   StreamSchema
	groupOff []int // flat column offset of each group
	groupLen []int
	ncols    int

	prev     []uint64 // previous bit pattern per column
	prevTime int64
	seq      uint64
	sentSch  bool

	buf    []byte // assembled output frame(s), reused across Finish calls
	rowBuf []byte // encoded rows of the in-progress data frame
	nrows  int
	began  bool
}

// NewColumnarEncoder creates an encoder for schema. The schema is captured
// by reference and must not be mutated afterwards.
func NewColumnarEncoder(schema StreamSchema) *ColumnarEncoder {
	e := &ColumnarEncoder{schema: schema}
	e.groupOff = make([]int, len(schema.Groups))
	e.groupLen = make([]int, len(schema.Groups))
	off := 0
	for i, g := range schema.Groups {
		e.groupOff[i] = off
		e.groupLen[i] = len(g.Columns)
		off += len(g.Columns)
	}
	e.ncols = off
	e.prev = make([]uint64, off)
	return e
}

// Schema returns the stream schema the encoder was built with.
func (e *ColumnarEncoder) Schema() StreamSchema { return e.schema }

// Reset clears all delta state, as if the stream had just opened: the next
// Finish re-emits the schema frame and restarts sequence numbering.
func (e *ColumnarEncoder) Reset() {
	for i := range e.prev {
		e.prev[i] = 0
	}
	e.prevTime = 0
	e.seq = 0
	e.sentSch = false
	e.began = false
	e.nrows = 0
}

// Begin starts a new data frame. Rows are added with AppendRow and the frame
// is assembled by Finish.
func (e *ColumnarEncoder) Begin() {
	e.rowBuf = e.rowBuf[:0]
	e.nrows = 0
	e.began = true
}

// AppendRow encodes one row into the in-progress frame. present has one
// entry per schema group (nil means every group is present); values is the
// flat column vector — only the columns of present groups are read.
func (e *ColumnarEncoder) AppendRow(timeNanos int64, warmup bool, present []bool, values []float64) error {
	if !e.began {
		return fmt.Errorf("rpc: columnar: AppendRow before Begin")
	}
	if present != nil && len(present) != len(e.schema.Groups) {
		return fmt.Errorf("rpc: columnar: presence vector has %d entries, schema has %d groups",
			len(present), len(e.schema.Groups))
	}
	if len(values) != e.ncols {
		return fmt.Errorf("rpc: columnar: row has %d values, schema has %d columns",
			len(values), e.ncols)
	}

	var flags byte
	if warmup {
		flags |= rowFlagWarmup
	}
	e.rowBuf = append(e.rowBuf, flags)

	nb := (len(e.schema.Groups) + 7) / 8
	bitmapAt := len(e.rowBuf)
	for i := 0; i < nb; i++ {
		e.rowBuf = append(e.rowBuf, 0)
	}
	for gi := range e.schema.Groups {
		if present == nil || present[gi] {
			e.rowBuf[bitmapAt+gi/8] |= 1 << (gi % 8)
		}
	}

	e.rowBuf = binary.AppendUvarint(e.rowBuf, zigzagEncode(timeNanos-e.prevTime))
	e.prevTime = timeNanos

	for gi := range e.schema.Groups {
		if present == nil || present[gi] {
			e.appendGroupRuns(gi, values)
		}
	}
	e.nrows++
	return nil
}

// appendGroupRuns emits the skip/take run-length stream for one group:
// alternating counts of unchanged and changed columns, with a zigzag varint
// bit-pattern delta per changed column. A fully unchanged group costs one
// varint.
func (e *ColumnarEncoder) appendGroupRuns(gi int, values []float64) {
	off, n := e.groupOff[gi], e.groupLen[gi]
	i := 0
	for i < n {
		skip := 0
		for i+skip < n && math.Float64bits(values[off+i+skip]) == e.prev[off+i+skip] {
			skip++
		}
		e.rowBuf = binary.AppendUvarint(e.rowBuf, uint64(skip))
		i += skip
		if i == n {
			break
		}
		take := 0
		for i+take < n && math.Float64bits(values[off+i+take]) != e.prev[off+i+take] {
			take++
		}
		e.rowBuf = binary.AppendUvarint(e.rowBuf, uint64(take))
		for j := 0; j < take; j++ {
			cur := math.Float64bits(values[off+i+j])
			// Wrapping uint64 subtraction: the decoder adds it back mod 2^64.
			e.rowBuf = binary.AppendUvarint(e.rowBuf, zigzagEncode(int64(cur-e.prev[off+i+j])))
			e.prev[off+i+j] = cur
		}
		i += take
	}
}

// Finish assembles the frame bytes: the schema frame first if it has not
// been sent on this stream yet, then the data frame with the rows appended
// since Begin. The returned slice is reused by the next Finish.
func (e *ColumnarEncoder) Finish() []byte {
	e.buf = e.buf[:0]
	if !e.sentSch {
		e.buf = e.appendSchemaFrame(e.buf)
		e.sentSch = true
	}
	e.seq++
	e.buf = append(e.buf, frameKindData)
	e.buf = binary.AppendUvarint(e.buf, e.seq)
	e.buf = binary.AppendUvarint(e.buf, uint64(e.nrows))
	e.buf = append(e.buf, e.rowBuf...)
	e.began = false
	return e.buf
}

func (e *ColumnarEncoder) appendSchemaFrame(dst []byte) []byte {
	dst = append(dst, frameKindSchema)
	dst = binary.AppendUvarint(dst, columnarVersion)
	dst = appendColumnarString(dst, e.schema.Method)
	dst = appendColumnarString(dst, e.schema.Node)
	dst = binary.AppendUvarint(dst, uint64(len(e.schema.Groups)))
	for _, g := range e.schema.Groups {
		dst = appendColumnarString(dst, g.Name)
		dst = binary.AppendUvarint(dst, uint64(len(g.Columns)))
		for _, c := range g.Columns {
			dst = appendColumnarString(dst, c)
			dst = append(dst, byte(ColumnFloat64))
		}
	}
	return dst
}

// columnarCursor is a bounds-checked reader over one transport body. Every
// read validates the remaining length, so arbitrary input errors cleanly
// instead of panicking or over-reading — the property the fuzz test holds.
type columnarCursor struct {
	b   []byte
	off int
}

func (c *columnarCursor) rem() int { return len(c.b) - c.off }

func (c *columnarCursor) u8() (byte, error) {
	if c.off >= len(c.b) {
		return 0, fmt.Errorf("rpc: columnar: truncated frame")
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

func (c *columnarCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("rpc: columnar: bad varint at offset %d", c.off)
	}
	c.off += n
	return v, nil
}

func (c *columnarCursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxSchemaString {
		return "", fmt.Errorf("rpc: columnar: string of %d bytes exceeds limit", n)
	}
	if uint64(c.rem()) < n {
		return "", fmt.Errorf("rpc: columnar: truncated string")
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s, nil
}

// ColumnarDecoder decodes a stream's frames, mirroring the encoder's delta
// state. Row storage is reused across Decode calls, so the steady-state
// decode path performs zero allocations.
type ColumnarDecoder struct {
	schema  StreamSchema
	haveSch bool

	groupOff []int
	groupLen []int
	ncols    int

	prev     []uint64
	prevTime int64
	seq      uint64

	rows  []StreamRow
	nrows int

	buf []byte // transport read buffer, loaned to readTaggedFrame
}

// NewColumnarDecoder creates an empty decoder; the schema arrives in-band
// with the first frame.
func NewColumnarDecoder() *ColumnarDecoder {
	return &ColumnarDecoder{}
}

// Reset discards the schema and all delta state, as for a freshly opened
// stream. The client does this when it reopens a stream on a new connection.
func (d *ColumnarDecoder) Reset() {
	d.haveSch = false
	d.nrows = 0
	d.seq = 0
	d.prevTime = 0
}

// Schema returns the stream schema, once a schema frame has been decoded.
func (d *ColumnarDecoder) Schema() (StreamSchema, bool) { return d.schema, d.haveSch }

// Rows returns the rows decoded by the last Decode call. The backing
// storage is reused by the next Decode.
func (d *ColumnarDecoder) Rows() []StreamRow { return d.rows[:d.nrows] }

// Decode consumes one transport body, which may concatenate a schema frame
// and/or data frames. Decoded rows are available from Rows until the next
// call. Any error leaves the decoder unusable until Reset — delta state may
// have partially advanced.
func (d *ColumnarDecoder) Decode(body []byte) error {
	d.nrows = 0
	cur := columnarCursor{b: body}
	for cur.off < len(cur.b) {
		kind, err := cur.u8()
		if err != nil {
			return err
		}
		switch kind {
		case frameKindSchema:
			if err := d.decodeSchema(&cur); err != nil {
				return err
			}
		case frameKindData:
			if err := d.decodeData(&cur); err != nil {
				return err
			}
		default:
			return fmt.Errorf("rpc: columnar: unknown frame kind 0x%02x", kind)
		}
	}
	return nil
}

func (d *ColumnarDecoder) decodeSchema(cur *columnarCursor) error {
	ver, err := cur.uvarint()
	if err != nil {
		return err
	}
	if ver != columnarVersion {
		return fmt.Errorf("rpc: columnar: schema version %d, want %d", ver, columnarVersion)
	}
	method, err := cur.str()
	if err != nil {
		return err
	}
	node, err := cur.str()
	if err != nil {
		return err
	}
	ngroups, err := cur.uvarint()
	if err != nil {
		return err
	}
	if ngroups > maxSchemaGroups {
		return fmt.Errorf("rpc: columnar: %d groups exceeds limit", ngroups)
	}
	groups := make([]ColumnGroup, 0, ngroups)
	total := 0
	for gi := uint64(0); gi < ngroups; gi++ {
		name, err := cur.str()
		if err != nil {
			return err
		}
		ncols, err := cur.uvarint()
		if err != nil {
			return err
		}
		if total+int(ncols) > maxSchemaColumns || ncols > maxSchemaColumns {
			return fmt.Errorf("rpc: columnar: schema exceeds %d columns", maxSchemaColumns)
		}
		cols := make([]string, 0, ncols)
		for ci := uint64(0); ci < ncols; ci++ {
			cn, err := cur.str()
			if err != nil {
				return err
			}
			ct, err := cur.u8()
			if err != nil {
				return err
			}
			if ColumnType(ct) != ColumnFloat64 {
				return fmt.Errorf("rpc: columnar: unsupported column type %d", ct)
			}
			cols = append(cols, cn)
		}
		groups = append(groups, ColumnGroup{Name: name, Columns: cols})
		total += int(ncols)
	}

	d.schema = StreamSchema{Method: method, Node: node, Groups: groups}
	if cap(d.groupOff) < len(groups) {
		d.groupOff = make([]int, len(groups))
		d.groupLen = make([]int, len(groups))
	}
	d.groupOff = d.groupOff[:len(groups)]
	d.groupLen = d.groupLen[:len(groups)]
	off := 0
	for i, g := range groups {
		d.groupOff[i] = off
		d.groupLen[i] = len(g.Columns)
		off += len(g.Columns)
	}
	d.ncols = off
	if cap(d.prev) < off {
		d.prev = make([]uint64, off)
	}
	d.prev = d.prev[:off]
	for i := range d.prev {
		d.prev[i] = 0
	}
	d.prevTime = 0
	d.seq = 0
	d.haveSch = true
	return nil
}

func (d *ColumnarDecoder) decodeData(cur *columnarCursor) error {
	if !d.haveSch {
		return fmt.Errorf("rpc: columnar: data frame before schema")
	}
	seq, err := cur.uvarint()
	if err != nil {
		return err
	}
	if seq != d.seq+1 {
		return fmt.Errorf("rpc: columnar: stream out of sync: frame seq %d after %d", seq, d.seq)
	}
	d.seq = seq
	nrows, err := cur.uvarint()
	if err != nil {
		return err
	}
	// Each row costs at least flags + bitmap + time on the wire, so a row
	// count beyond the remaining bytes is a lie; the cell cap bounds the
	// materialized row storage against tiny-row/wide-schema bombs.
	if nrows > maxFrameRows || nrows > uint64(cur.rem())+1 {
		return fmt.Errorf("rpc: columnar: frame claims %d rows", nrows)
	}
	if d.ncols > 0 && nrows*uint64(d.ncols) > maxFrameCells {
		return fmt.Errorf("rpc: columnar: frame of %d rows x %d columns exceeds limit", nrows, d.ncols)
	}
	nb := (len(d.schema.Groups) + 7) / 8
	for ri := uint64(0); ri < nrows; ri++ {
		flags, err := cur.u8()
		if err != nil {
			return err
		}
		if cur.rem() < nb {
			return fmt.Errorf("rpc: columnar: truncated presence bitmap")
		}
		bitmap := cur.b[cur.off : cur.off+nb]
		cur.off += nb
		tdelta, err := cur.uvarint()
		if err != nil {
			return err
		}
		d.prevTime += zigzagDecode(tdelta)
		for gi := range d.schema.Groups {
			if bitmap[gi/8]&(1<<(gi%8)) == 0 {
				continue
			}
			if err := d.decodeGroupRuns(cur, gi); err != nil {
				return err
			}
		}
		row := d.row()
		row.TimeNanos = d.prevTime
		row.Warmup = flags&rowFlagWarmup != 0
		for gi := range d.schema.Groups {
			row.Present[gi] = bitmap[gi/8]&(1<<(gi%8)) != 0
		}
		for i, bits := range d.prev {
			row.Values[i] = math.Float64frombits(bits)
		}
	}
	return nil
}

func (d *ColumnarDecoder) decodeGroupRuns(cur *columnarCursor, gi int) error {
	off, n := d.groupOff[gi], d.groupLen[gi]
	i := 0
	for i < n {
		skip, err := cur.uvarint()
		if err != nil {
			return err
		}
		if skip > uint64(n-i) {
			return fmt.Errorf("rpc: columnar: skip run of %d exceeds %d remaining columns", skip, n-i)
		}
		i += int(skip)
		if i == n {
			break
		}
		take, err := cur.uvarint()
		if err != nil {
			return err
		}
		if take == 0 || take > uint64(n-i) {
			return fmt.Errorf("rpc: columnar: take run of %d with %d remaining columns", take, n-i)
		}
		for j := 0; j < int(take); j++ {
			dv, err := cur.uvarint()
			if err != nil {
				return err
			}
			d.prev[off+i+j] += uint64(zigzagDecode(dv))
		}
		i += int(take)
	}
	return nil
}

// row returns reusable storage for the next decoded row, sized to the
// current schema.
func (d *ColumnarDecoder) row() *StreamRow {
	if d.nrows >= len(d.rows) {
		d.rows = append(d.rows, StreamRow{})
	}
	r := &d.rows[d.nrows]
	d.nrows++
	if cap(r.Values) < d.ncols {
		r.Values = make([]float64, d.ncols)
	}
	r.Values = r.Values[:d.ncols]
	if cap(r.Present) < len(d.schema.Groups) {
		r.Present = make([]bool, len(d.schema.Groups))
	}
	r.Present = r.Present[:len(d.schema.Groups)]
	return r
}
