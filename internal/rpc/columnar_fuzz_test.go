package rpc

import (
	"math"
	"testing"
)

// fuzzSeedBodies builds a handful of valid transport bodies — schema-only,
// schema+data, multi-row, presence-toggling — that seed the fuzzer near the
// interesting parts of the grammar.
func fuzzSeedBodies() [][]byte {
	schema := StreamSchema{
		Method: "sadc.metrics",
		Node:   "n1",
		Groups: []ColumnGroup{
			{Name: "node", Columns: []string{"a", "b", "c", "d"}},
			{Name: "net:eth0", Columns: []string{"rx", "tx"}},
		},
	}
	enc := NewColumnarEncoder(schema)
	var seeds [][]byte

	enc.Begin()
	_ = enc.AppendRow(1e9, false, nil, []float64{1, 2, 3, 4, 5, 6})
	seeds = append(seeds, append([]byte(nil), enc.Finish()...)) // schema + first data

	enc.Begin()
	_ = enc.AppendRow(2e9, false, nil, []float64{1, 2, 3.5, 4, 5, 6})
	_ = enc.AppendRow(3e9, true, []bool{true, false}, []float64{1, 2, 3.5, 4, 5, 6})
	seeds = append(seeds, append([]byte(nil), enc.Finish()...)) // delta data, 2 rows

	enc.Begin()
	_ = enc.AppendRow(4e9, false, nil, []float64{math.NaN(), math.Inf(1), -0, math.MaxFloat64, 0, 1e-308})
	seeds = append(seeds, append([]byte(nil), enc.Finish()...))

	return seeds
}

// FuzzColumnarDecode holds the decoder's safety contract: arbitrary bytes
// must produce a clean error or a valid decode — never a panic, over-read,
// or unbounded allocation. Each input is decoded twice, once into a fresh
// decoder and once into a decoder already primed with a schema, since the
// two start states take different code paths.
func FuzzColumnarDecode(f *testing.F) {
	for _, s := range fuzzSeedBodies() {
		f.Add(s)
	}
	// Truncations and bit flips of a valid body.
	base := fuzzSeedBodies()[0]
	f.Add(base[:len(base)/2])
	flipped := append([]byte(nil), base...)
	flipped[0] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{frameKindData, 1, 1})
	f.Add([]byte{frameKindSchema, 1, 0xff, 0xff, 0xff, 0xff, 0x0f})

	primerSchema := fuzzSeedBodies()[0]
	f.Fuzz(func(t *testing.T, body []byte) {
		fresh := NewColumnarDecoder()
		_ = fresh.Decode(body)

		primed := NewColumnarDecoder()
		if err := primed.Decode(primerSchema); err != nil {
			t.Fatalf("priming decode failed: %v", err)
		}
		_ = primed.Decode(body)
	})
}
