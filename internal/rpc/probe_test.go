package rpc

import (
	"testing"
	"time"
)

func TestProbePlannerBudgetPerWindow(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	interval := 2 * time.Second
	const budget = 3
	// Deterministic mid-slot jitter.
	p := NewProbePlanner(base, interval, budget, func() float64 { return 0.5 })

	const n = 20
	perWindow := map[int]int{}
	for i := 0; i < n; i++ {
		at := p.Next()
		if at.Before(base) {
			t.Fatalf("probe %d planned before base: %v", i, at)
		}
		window := int(at.Sub(base) / interval)
		perWindow[window]++
	}
	if p.Planned() != n {
		t.Fatalf("Planned() = %d, want %d", p.Planned(), n)
	}
	for w, c := range perWindow {
		if c > budget {
			t.Errorf("window %d holds %d probes, budget %d", w, c, budget)
		}
	}
	// The herd must actually spread: 20 probes at budget 3 need >= 7 windows.
	if len(perWindow) < (n+budget-1)/budget {
		t.Errorf("probes spread over %d windows, want >= %d", len(perWindow), (n+budget-1)/budget)
	}
}

func TestProbePlannerJitterStaysInsideSlot(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	interval := time.Second
	// Adversarial jitter at the top of the range must not spill into the
	// next slot's window.
	p := NewProbePlanner(base, interval, 1, func() float64 { return 0.999999999 })
	for slot := 0; slot < 5; slot++ {
		at := p.Next()
		lo := base.Add(time.Duration(slot) * interval)
		hi := lo.Add(interval)
		if at.Before(lo) || !at.Before(hi) {
			t.Errorf("slot %d probe at %v outside [%v, %v)", slot, at, lo, hi)
		}
	}
}

func TestProbePlannerDefaults(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	p := NewProbePlanner(base, 0, 0, nil)
	if p.interval != 2*time.Second || p.budget != 4 {
		t.Fatalf("defaults = (%v, %d), want (2s, 4)", p.interval, p.budget)
	}
	if at := p.Next(); at.Before(base) || !at.Before(base.Add(2*time.Second)) {
		t.Fatalf("first default probe at %v outside first window", at)
	}
}

func TestBreakerExportImportRoundTrip(t *testing.T) {
	addr := refusedAddr(t)
	clk := newFakeClock()
	mc := NewManagedClient(addr, "test", managedOpts(clk))
	defer func() { _ = mc.Close() }()

	// Trip the breaker open: threshold 3 consecutive dial failures, with
	// backoff advanced past between attempts.
	for i := 0; i < 3; i++ {
		_ = mc.Call("echo", nil, nil)
		clk.advance(200 * time.Millisecond)
	}
	snap := mc.ExportBreaker()
	if snap.State != BreakerOpen || snap.ConsecutiveFailures != 3 || snap.TotalFailures != 3 {
		t.Fatalf("unexpected export after trip: %+v", snap)
	}
	if snap.Addr != addr || snap.LastError == "" || snap.CooldownUntil.IsZero() {
		t.Fatalf("export missing context: %+v", snap)
	}

	// "Restart": a fresh client restored from the snapshot with a staggered
	// probe time 5s out.
	clk2 := newFakeClock()
	probeAt := clk2.now().Add(5 * time.Second)
	mc2 := NewManagedClient(addr, "test", managedOpts(clk2))
	defer func() { _ = mc2.Close() }()
	mc2.ImportBreaker(snap, probeAt)

	h := mc2.Health()
	if h.State != BreakerOpen || h.ConsecutiveFailures != 3 || h.TotalFailures != 3 {
		t.Fatalf("restored health = %+v", h)
	}
	if h.LastError == "" {
		t.Fatalf("restored client lost the last error")
	}

	// Before probeAt: fail fast, no dial.
	if err := mc2.Call("echo", nil, nil); err == nil {
		t.Fatal("call before probeAt should fail fast")
	}
	if h := mc2.Health(); h.State != BreakerOpen || h.TotalFailures != 3 {
		t.Fatalf("pre-probe call changed state: %+v", h)
	}

	// At probeAt: the half-open probe dials (and fails against the refused
	// addr, re-opening).
	clk2.advance(5 * time.Second)
	if err := mc2.Call("echo", nil, nil); err == nil {
		t.Fatal("probe against refused addr should fail")
	}
	if h := mc2.Health(); h.State != BreakerOpen || h.TotalFailures != 4 {
		t.Fatalf("failed probe should re-open with one more failure: %+v", h)
	}
}

func TestBreakerImportClosedStateIsNoOp(t *testing.T) {
	_, addr := newEchoServer(t)
	clk := newFakeClock()
	mc := NewManagedClient(addr, "test", managedOpts(clk))
	defer func() { _ = mc.Close() }()

	mc.ImportBreaker(BreakerSnapshot{Addr: addr, State: BreakerClosed, TotalFailures: 7, Reconnects: 2}, time.Time{})
	h := mc.Health()
	if h.State != BreakerClosed || h.TotalFailures != 7 || h.Reconnects != 2 {
		t.Fatalf("closed import should keep breaker closed with lineage counters: %+v", h)
	}
	var out string
	if err := mc.Call("echo", "hi", &out); err != nil || out != "hi" {
		t.Fatalf("closed restored client should call through: %v %q", err, out)
	}
}

func TestBreakerImportHalfOpenReloadsAsOpen(t *testing.T) {
	addr := refusedAddr(t)
	clk := newFakeClock()
	mc := NewManagedClient(addr, "test", managedOpts(clk))
	defer func() { _ = mc.Close() }()

	probeAt := clk.now().Add(3 * time.Second)
	mc.ImportBreaker(BreakerSnapshot{Addr: addr, State: BreakerHalfOpen, ConsecutiveFailures: 4}, probeAt)
	if h := mc.Health(); h.State != BreakerOpen {
		t.Fatalf("half-open snapshot should reload as open, got %v", h.State)
	}
	if err := mc.Call("echo", nil, nil); err == nil {
		t.Fatal("call before planned probe should fail fast")
	}
}
