// Package rpc is ASDF's lightweight remote-procedure-call layer, standing in
// for ZeroC ICE in the paper's architecture (§3.5): each monitored node runs
// collection daemons (sadc_rpcd, hadoop_log_rpcd) and the control node polls
// them once per iteration.
//
// The wire protocol is length-prefixed JSON over TCP: a 4-byte big-endian
// frame length followed by a JSON body. A connection begins with a hello
// exchange (protocol version and service name), after which the client
// issues synchronous request/response calls. Both ends count exact wire
// bytes, which is how the Table 4 bandwidth experiment is measured.
package rpc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ProtocolVersion identifies the wire protocol; the hello exchange rejects
// mismatches.
const ProtocolVersion = 1

// maxFrameBytes bounds a single frame; larger frames indicate a corrupt or
// hostile peer.
const maxFrameBytes = 16 << 20

// Errors returned by the client.
var (
	// ErrClosed is returned by calls on a closed client.
	ErrClosed = errors.New("rpc: connection closed")
)

// RemoteError is an error returned by the remote handler (as opposed to a
// transport failure).
type RemoteError struct {
	Method  string
	Message string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error in %s: %s", e.Method, e.Message)
}

type helloRequest struct {
	Proto  int    `json:"proto"`
	Client string `json:"client"`
}

type helloResponse struct {
	Proto   int      `json:"proto"`
	Service string   `json:"service"`
	Methods []string `json:"methods"`
}

type request struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

type response struct {
	ID     uint64          `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// countingConn wraps a net.Conn with byte counters.
type countingConn struct {
	net.Conn
	read    atomic.Uint64
	written atomic.Uint64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read.Add(uint64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written.Add(uint64(n))
	return n, err
}

// writeFrame writes one length-prefixed JSON frame.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rpc: marshal: %w", err)
	}
	if len(body) > maxFrameBytes {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("rpc: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("rpc: write body: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed JSON frame into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err // io.EOF passes through for clean shutdown detection
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("rpc: read body: %w", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("rpc: unmarshal: %w", err)
	}
	return nil
}

// HandlerFunc serves one method. Params is the raw JSON sent by the client;
// the returned value is marshaled as the result.
type HandlerFunc func(params json.RawMessage) (any, error)

// Faults configures server-side fault injection, used by tests and chaos
// drills to exercise the collection plane's failure handling without a real
// network. The zero value injects nothing.
type Faults struct {
	// RefuseNew closes newly accepted connections before the hello
	// exchange, simulating a daemon that is up but wedged.
	RefuseNew bool
	// Delay sleeps this long before every response, simulating a slow
	// node; pair with a short client CallTimeout to force timeouts.
	Delay time.Duration
}

// Server dispatches calls to registered handlers. The zero value is not
// usable; create with NewServer.
type Server struct {
	service string

	mu             sync.Mutex
	handlers       map[string]HandlerFunc
	streamHandlers map[string]StreamHandlerFunc
	listener       net.Listener
	conns          map[net.Conn]bool
	closed         bool
	faults         Faults

	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
}

// NewServer creates a server identifying itself as service in the hello
// exchange.
func NewServer(service string) *Server {
	return &Server{
		service:        service,
		handlers:       make(map[string]HandlerFunc),
		streamHandlers: make(map[string]StreamHandlerFunc),
		conns:          make(map[net.Conn]bool),
	}
}

// Handle registers a handler for method. Registering a duplicate method is
// a programming error and panics.
func (s *Server) Handle(method string, h HandlerFunc) {
	if method == "" || h == nil {
		panic("rpc: Handle requires a method name and handler")
	}
	if method == MethodBatch || isStreamMethod(method) {
		panic("rpc: " + method + " is reserved; the server dispatches it natively")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("rpc: method %q registered twice", method))
	}
	s.handlers[method] = h
}

// Listen begins accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines; call
// Close to stop.
func (s *Server) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = l.Close()
		return nil, ErrClosed
	}
	s.listener = l
	s.mu.Unlock()

	go s.acceptLoop(l)
	return l.Addr(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// SetFaults replaces the server's injected faults; it applies to new
// connections and to responses on existing ones.
func (s *Server) SetFaults(f Faults) {
	s.mu.Lock()
	s.faults = f
	s.mu.Unlock()
}

// DropConns abruptly closes every active connection while keeping the
// listener up, simulating a network partition that severs established
// connections. It returns the number of connections dropped.
func (s *Server) DropConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for conn := range s.conns {
		_ = conn.Close()
		n++
	}
	return n
}

func (s *Server) currentFaults() Faults {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

func (s *Server) serveConn(raw net.Conn) {
	cc := &countingConn{Conn: raw}
	cs := &connState{srv: s, cc: cc, done: make(chan struct{})}
	defer func() {
		close(cs.done) // retire this connection's push goroutines
		s.bytesRead.Add(cc.read.Load())
		s.bytesWritten.Add(cc.written.Load())
		_ = raw.Close()
		s.mu.Lock()
		delete(s.conns, raw)
		s.mu.Unlock()
	}()

	if s.currentFaults().RefuseNew {
		return // injected fault: drop the connection before hello
	}

	var hello helloRequest
	if err := readFrame(cc, &hello); err != nil {
		return
	}
	if hello.Proto != ProtocolVersion {
		_ = cs.write(response{Error: fmt.Sprintf("unsupported protocol %d", hello.Proto)})
		return
	}
	s.mu.Lock()
	methods := make([]string, 0, len(s.handlers)+1)
	for m := range s.handlers {
		methods = append(methods, m)
	}
	if len(s.streamHandlers) > 0 {
		methods = append(methods, MethodStreamOpen)
	}
	s.mu.Unlock()
	if err := cs.write(helloResponse{Proto: ProtocolVersion, Service: s.service, Methods: methods}); err != nil {
		return
	}

	for {
		var req request
		if err := readFrame(cc, &req); err != nil {
			return
		}
		switch req.Method {
		case MethodStreamPull:
			// Collects, applies the delay fault, and writes the binary (or
			// JSON error) frame itself.
			if err := cs.pullStream(&req); err != nil {
				return
			}
		case MethodStreamCredit:
			// Fire-and-forget: credits wake the stream's pusher, which owns
			// the response frames.
			cs.creditStream(&req)
		case MethodBatch:
			// Encodes the reply through pooled scratch rather than the
			// generic marshal path.
			if err := cs.serveBatch(&req); err != nil {
				return
			}
		default:
			var resp response
			if req.Method == MethodStreamOpen {
				resp = cs.openStream(&req)
			} else {
				resp = s.dispatch(&req)
			}
			if d := s.currentFaults().Delay; d > 0 {
				time.Sleep(d) // injected fault: slow node
			}
			if err := cs.write(resp); err != nil {
				return
			}
		}
	}
}

func (s *Server) dispatch(req *request) response {
	if req.Method == MethodBatch || isStreamMethod(req.Method) {
		// The serve loop routes these natively; reaching dispatch means a
		// nested batch item tried to smuggle one in.
		return response{ID: req.ID, Error: fmt.Sprintf("method %q not allowed here", req.Method)}
	}
	s.mu.Lock()
	h, ok := s.handlers[req.Method]
	s.mu.Unlock()
	if !ok {
		return response{ID: req.ID, Error: fmt.Sprintf("unknown method %q", req.Method)}
	}
	result, err := h(req.Params)
	if err != nil {
		return response{ID: req.ID, Error: err.Error()}
	}
	raw, err := json.Marshal(result)
	if err != nil {
		return response{ID: req.ID, Error: fmt.Sprintf("marshal result: %v", err)}
	}
	return response{ID: req.ID, Result: raw}
}

// Close stops the listener and closes all active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for conn := range s.conns {
		_ = conn.Close()
	}
	return err
}

// Stats reports total wire bytes over all finished and active accounting
// periods (bytes from connections still open are flushed on their close).
func (s *Server) Stats() (bytesRead, bytesWritten uint64) {
	return s.bytesRead.Load(), s.bytesWritten.Load()
}

// Client is a synchronous RPC client over one TCP connection. Safe for
// concurrent use; calls are serialized on the connection.
type Client struct {
	mu      sync.Mutex
	conn    *countingConn
	closed  bool
	nextID  uint64
	timeout time.Duration

	// Service and Methods are populated from the hello exchange.
	Service string
	Methods []string
}

// DialOption customizes Dial.
type DialOption func(*Client)

// WithCallTimeout sets a per-call deadline (default 10s).
func WithCallTimeout(d time.Duration) DialOption {
	return func(c *Client) { c.timeout = d }
}

// Dial connects to an RPC server, performs the hello exchange, and returns
// a ready client.
func Dial(addr, clientName string, opts ...DialOption) (*Client, error) {
	raw, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c := &Client{conn: &countingConn{Conn: raw}, timeout: 10 * time.Second}
	for _, o := range opts {
		o(c)
	}
	if err := writeFrame(c.conn, helloRequest{Proto: ProtocolVersion, Client: clientName}); err != nil {
		_ = raw.Close()
		return nil, err
	}
	var hello helloResponse
	_ = raw.SetReadDeadline(time.Now().Add(c.timeout))
	if err := readFrame(c.conn, &hello); err != nil {
		_ = raw.Close()
		return nil, fmt.Errorf("rpc: hello: %w", err)
	}
	_ = raw.SetReadDeadline(time.Time{})
	if hello.Proto != ProtocolVersion {
		_ = raw.Close()
		return nil, fmt.Errorf("rpc: server speaks protocol %d, want %d", hello.Proto, ProtocolVersion)
	}
	c.Service = hello.Service
	c.Methods = hello.Methods
	return c, nil
}

// Call invokes method with params (marshaled to JSON) and unmarshals the
// result into result (which may be nil to discard).
func (c *Client) Call(method string, params, result any) error {
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("rpc: marshal params: %w", err)
		}
		raw = b
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.nextID++
	req := request{ID: c.nextID, Method: method, Params: raw}

	deadline := time.Now().Add(c.timeout)
	_ = c.conn.SetDeadline(deadline)
	defer func() { _ = c.conn.SetDeadline(time.Time{}) }()

	if err := writeFrame(c.conn, req); err != nil {
		return err
	}
	var resp response
	if err := readFrame(c.conn, &resp); err != nil {
		if errors.Is(err, io.EOF) {
			return ErrClosed
		}
		return fmt.Errorf("rpc: call %s: %w", method, err)
	}
	if resp.ID != req.ID {
		return fmt.Errorf("rpc: call %s: response id %d, want %d", method, resp.ID, req.ID)
	}
	if resp.Error != "" {
		return &RemoteError{Method: method, Message: resp.Error}
	}
	if result != nil && resp.Result != nil {
		if err := json.Unmarshal(resp.Result, result); err != nil {
			return fmt.Errorf("rpc: call %s: unmarshal result: %w", method, err)
		}
	}
	return nil
}

// Stats reports the exact wire bytes sent and received by this client,
// including the hello exchange.
func (c *Client) Stats() (bytesSent, bytesReceived uint64) {
	return c.conn.written.Load(), c.conn.read.Load()
}

// Close closes the connection. Subsequent calls return ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}
