package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Batched calls: several method invocations against one node in one request
// frame and one response frame. A collector that needs N methods per node
// per tick (e.g. the sadc node/net/proc metric groups) pays one network
// round trip instead of N, which is what keeps per-tick collection latency
// flat as the per-node method count grows. The batch rides inside the
// ordinary request/response frames — the reserved method MethodBatch carries
// an array of sub-requests as its params and an array of sub-results as its
// result — so byte accounting, fault injection, and per-connection
// serialization all apply to a batch exactly as to a single call.

// MethodBatch is the reserved method name for a batched request frame. Its
// params are a JSON array of {id, method, params} items; its result is a
// JSON array of {id, result, error} items. Every server dispatches it
// natively; handlers cannot register it.
const MethodBatch = "rpc.batch"

// BatchCall is one method invocation inside a CallBatch frame. Params must
// be pre-marshaled JSON (or nil for no parameters) — marshaling once at
// wiring time is what keeps the per-tick encode path allocation-free.
// After CallBatch returns nil, Err holds this call's outcome (nil or a
// *RemoteError) and, when Err is nil, Result has been filled in. When
// CallBatch itself returns an error (a transport failure), the per-call
// fields are unspecified.
type BatchCall struct {
	// Method is the remote method name.
	Method string
	// Params is the pre-marshaled parameter JSON; nil sends no params.
	Params json.RawMessage
	// Result, when non-nil, receives the unmarshaled result.
	Result any
	// Err is this call's outcome, set by CallBatch.
	Err error
}

// BatchCaller is the batched call surface. *Client and *ManagedClient both
// implement it; collection sources type-assert against it to decide whether
// a connection supports batching (a custom test dialer may not).
type BatchCaller interface {
	CallBatch(calls []BatchCall) error
}

var (
	_ BatchCaller = (*Client)(nil)
	_ BatchCaller = (*ManagedClient)(nil)
)

// batchItem is the wire form of one sub-request inside a MethodBatch frame.
type batchItem struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

// batchResult is the wire form of one sub-result.
type batchResult struct {
	ID     uint64          `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// batchScratch pools encode buffers for CallBatch frames, so the steady
// state encode path performs zero allocations regardless of batch size.
var batchScratch = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// appendBatchRequest appends the full MethodBatch request body — the outer
// request envelope plus every sub-request — to dst and returns the extended
// slice. It is hand-rolled (no encoding/json) so a pooled dst makes the
// whole encode allocation-free; sub-request ids are the calls' indexes.
func appendBatchRequest(dst []byte, id uint64, calls []BatchCall) ([]byte, error) {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendUint(dst, id, 10)
	dst = append(dst, `,"method":"`...)
	dst = append(dst, MethodBatch...)
	dst = append(dst, `","params":[`...)
	for i, c := range calls {
		if c.Method == "" {
			return nil, fmt.Errorf("rpc: batch call %d: empty method", i)
		}
		if c.Method == MethodBatch {
			return nil, fmt.Errorf("rpc: batch call %d: nested batch", i)
		}
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"id":`...)
		dst = strconv.AppendUint(dst, uint64(i), 10)
		dst = append(dst, `,"method":`...)
		dst = appendJSONString(dst, c.Method)
		if len(c.Params) > 0 {
			dst = append(dst, `,"params":`...)
			dst = append(dst, c.Params...)
		}
		dst = append(dst, '}')
	}
	dst = append(dst, `]}`...)
	return dst, nil
}

// appendJSONString appends s as a JSON string literal, escaping the
// characters the grammar requires (quote, backslash, control bytes).
// Method names are short ASCII identifiers, so the fast path is a straight
// copy.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			dst = append(dst, '\\', '"')
		case c == '\\':
			dst = append(dst, '\\', '\\')
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0',
				"0123456789abcdef"[c>>4], "0123456789abcdef"[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// writeRawFrame writes one length-prefixed frame whose body is already
// serialized, the raw counterpart of writeFrame.
func writeRawFrame(w io.Writer, body []byte) error {
	if len(body) > maxFrameBytes {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	hdr[0] = byte(len(body) >> 24)
	hdr[1] = byte(len(body) >> 16)
	hdr[2] = byte(len(body) >> 8)
	hdr[3] = byte(len(body))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("rpc: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("rpc: write body: %w", err)
	}
	return nil
}

// CallBatch sends every call in one request frame and reads one response
// frame, filling each call's Result and Err in place. The returned error
// reports transport-level failures (and whole-batch remote rejections, as a
// *RemoteError); per-method handler errors land in the corresponding
// call's Err as a *RemoteError and do not fail the batch. An empty batch is
// a no-op.
func (c *Client) CallBatch(calls []BatchCall) error {
	if len(calls) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.nextID++
	id := c.nextID

	bufp := batchScratch.Get().(*[]byte)
	body, err := appendBatchRequest((*bufp)[:0], id, calls)
	if err != nil {
		batchScratch.Put(bufp)
		return err
	}

	deadline := time.Now().Add(c.timeout)
	_ = c.conn.SetDeadline(deadline)
	defer func() { _ = c.conn.SetDeadline(time.Time{}) }()

	werr := writeRawFrame(c.conn, body)
	*bufp = body[:0]
	batchScratch.Put(bufp)
	if werr != nil {
		return werr
	}

	var resp response
	if err := readFrame(c.conn, &resp); err != nil {
		if errors.Is(err, io.EOF) {
			return ErrClosed
		}
		return fmt.Errorf("rpc: call %s: %w", MethodBatch, err)
	}
	if resp.ID != id {
		return fmt.Errorf("rpc: call %s: response id %d, want %d", MethodBatch, resp.ID, id)
	}
	if resp.Error != "" {
		return &RemoteError{Method: MethodBatch, Message: resp.Error}
	}

	var results []batchResult
	if err := json.Unmarshal(resp.Result, &results); err != nil {
		return fmt.Errorf("rpc: call %s: unmarshal result: %w", MethodBatch, err)
	}
	for i := range calls {
		calls[i].Err = fmt.Errorf("rpc: call %s: no response for item %d (%s)",
			MethodBatch, i, calls[i].Method)
	}
	for _, r := range results {
		if r.ID >= uint64(len(calls)) {
			return fmt.Errorf("rpc: call %s: response for unknown item %d", MethodBatch, r.ID)
		}
		call := &calls[r.ID]
		if r.Error != "" {
			call.Err = &RemoteError{Method: call.Method, Message: r.Error}
			continue
		}
		call.Err = nil
		if call.Result != nil && r.Result != nil {
			if err := json.Unmarshal(r.Result, call.Result); err != nil {
				call.Err = fmt.Errorf("rpc: call %s: unmarshal result: %w", call.Method, err)
			}
		}
	}
	return nil
}

// batchResults serves one MethodBatch frame's items: each sub-request goes
// through the ordinary dispatch table and its outcome (result or error) is
// recorded under the sub-request's id. A failing item never fails its
// siblings, and nesting batches is rejected per item. A non-empty errMsg
// reports a malformed frame (the whole batch fails).
func (s *Server) batchResults(req *request) (results []batchResult, errMsg string) {
	var items []batchItem
	if err := json.Unmarshal(req.Params, &items); err != nil {
		return nil, fmt.Sprintf("malformed batch: %v", err)
	}
	results = make([]batchResult, len(items))
	for i, it := range items {
		results[i].ID = it.ID
		if it.Method == MethodBatch {
			results[i].Error = "nested batch not allowed"
			continue
		}
		r := s.dispatch(&request{ID: it.ID, Method: it.Method, Params: it.Params})
		results[i].Result = r.Result
		results[i].Error = r.Error
	}
	return results, ""
}

// appendBatchResponse appends the full MethodBatch response body — the outer
// response envelope plus every sub-result — to dst and returns the extended
// slice: the server-side mirror of appendBatchRequest, hand-rolled so a
// pooled dst makes the reply encode allocation-free too. Sub-results carry
// already-serialized JSON straight through.
func appendBatchResponse(dst []byte, id uint64, results []batchResult) []byte {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendUint(dst, id, 10)
	dst = append(dst, `,"result":[`...)
	for i, r := range results {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"id":`...)
		dst = strconv.AppendUint(dst, r.ID, 10)
		if len(r.Result) > 0 {
			dst = append(dst, `,"result":`...)
			dst = append(dst, r.Result...)
		}
		if r.Error != "" {
			dst = append(dst, `,"error":`...)
			dst = appendJSONString(dst, r.Error)
		}
		dst = append(dst, '}')
	}
	return append(dst, `]}`...)
}

// serveBatch serves one MethodBatch frame end to end, encoding the reply
// through pooled scratch and writing it as a raw frame. The returned error
// is a connection write failure.
func (cs *connState) serveBatch(req *request) error {
	results, errMsg := cs.srv.batchResults(req)
	if d := cs.srv.currentFaults().Delay; d > 0 {
		time.Sleep(d) // injected fault: slow node
	}
	if errMsg != "" {
		return cs.write(response{ID: req.ID, Error: errMsg})
	}
	bufp := batchScratch.Get().(*[]byte)
	body := appendBatchResponse((*bufp)[:0], req.ID, results)
	err := cs.writeRaw(body)
	*bufp = body[:0]
	batchScratch.Put(bufp)
	return err
}
