package rpc

import (
	"encoding/json"
	"testing"
)

// BenchmarkManagedClientOverhead compares a supervised ManagedClient call
// against a bare Client call on the same echo server, isolating the cost of
// the breaker/reconnect bookkeeping per healthy round trip.
func BenchmarkManagedClientOverhead(b *testing.B) {
	srv := NewServer("bench")
	srv.Handle("echo", func(params json.RawMessage) (any, error) {
		var v map[string]any
		if err := json.Unmarshal(params, &v); err != nil {
			return nil, err
		}
		return v, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	payload := map[string]any{"metrics": []float64{1, 2, 3, 4, 5, 6, 7, 8}}

	b.Run("client=bare", func(b *testing.B) {
		c, err := Dial(addr.String(), "bench")
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var out map[string]any
			if err := c.Call("echo", payload, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("client=managed", func(b *testing.B) {
		m := NewManagedClient(addr.String(), "bench", Options{})
		defer func() { _ = m.Close() }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var out map[string]any
			if err := m.Call("echo", payload, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchEncode measures the CallBatch encode path in isolation:
// building the full request frame body for a four-method batch out of the
// pooled scratch buffer. This is the collection plane's per-node, per-tick
// hot path at 1000-node scale, so it is held to 0 allocs/op in CI.
func BenchmarkBatchEncode(b *testing.B) {
	calls := []BatchCall{
		{Method: "sadc.node"},
		{Method: "sadc.net", Params: json.RawMessage(`{"ifaces":["eth0","eth1"]}`)},
		{Method: "sadc.proc", Params: json.RawMessage(`{"pids":[3001,3002]}`)},
		{Method: "hadoop_log.vectors", Params: json.RawMessage(`{"kind":"tasktracker"}`)},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		bufp := batchScratch.Get().(*[]byte)
		body, err := appendBatchRequest((*bufp)[:0], uint64(i+1), calls)
		if err != nil {
			b.Fatal(err)
		}
		total += len(body)
		*bufp = body[:0]
		batchScratch.Put(bufp)
	}
	if total == 0 {
		b.Fatal("encoded nothing")
	}
}

// BenchmarkBatchRoundTrip compares N sequential calls per tick against one
// batched frame carrying the same N methods, over real loopback TCP. The
// mode suffix pairs the samples for benchstat.
func BenchmarkBatchRoundTrip(b *testing.B) {
	const methods = 4
	srv := NewServer("bench")
	srv.Handle("echo", func(params json.RawMessage) (any, error) {
		var v map[string]any
		if err := json.Unmarshal(params, &v); err != nil {
			return nil, err
		}
		return v, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	params := json.RawMessage(`{"metrics":[1,2,3,4,5,6,7,8]}`)

	b.Run("mode=serial", func(b *testing.B) {
		c, err := Dial(addr.String(), "bench")
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < methods; j++ {
				var out map[string]any
				if err := c.Call("echo", params, &out); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("mode=batch", func(b *testing.B) {
		c, err := Dial(addr.String(), "bench")
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		outs := make([]map[string]any, methods)
		calls := make([]BatchCall, methods)
		for j := range calls {
			calls[j] = BatchCall{Method: "echo", Params: params, Result: &outs[j]}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.CallBatch(calls); err != nil {
				b.Fatal(err)
			}
			for j := range calls {
				if calls[j].Err != nil {
					b.Fatal(calls[j].Err)
				}
			}
		}
	})
}

func BenchmarkCallRoundTrip(b *testing.B) {
	srv := NewServer("bench")
	srv.Handle("echo", func(params json.RawMessage) (any, error) {
		var v map[string]any
		if err := json.Unmarshal(params, &v); err != nil {
			return nil, err
		}
		return v, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	c, err := Dial(addr.String(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	payload := map[string]any{"metrics": []float64{1, 2, 3, 4, 5, 6, 7, 8}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out map[string]any
		if err := c.Call("echo", payload, &out); err != nil {
			b.Fatal(err)
		}
	}
}
