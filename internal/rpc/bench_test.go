package rpc

import (
	"encoding/json"
	"testing"
)

// BenchmarkManagedClientOverhead compares a supervised ManagedClient call
// against a bare Client call on the same echo server, isolating the cost of
// the breaker/reconnect bookkeeping per healthy round trip.
func BenchmarkManagedClientOverhead(b *testing.B) {
	srv := NewServer("bench")
	srv.Handle("echo", func(params json.RawMessage) (any, error) {
		var v map[string]any
		if err := json.Unmarshal(params, &v); err != nil {
			return nil, err
		}
		return v, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	payload := map[string]any{"metrics": []float64{1, 2, 3, 4, 5, 6, 7, 8}}

	b.Run("client=bare", func(b *testing.B) {
		c, err := Dial(addr.String(), "bench")
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var out map[string]any
			if err := c.Call("echo", payload, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("client=managed", func(b *testing.B) {
		m := NewManagedClient(addr.String(), "bench", Options{})
		defer func() { _ = m.Close() }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var out map[string]any
			if err := m.Call("echo", payload, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCallRoundTrip(b *testing.B) {
	srv := NewServer("bench")
	srv.Handle("echo", func(params json.RawMessage) (any, error) {
		var v map[string]any
		if err := json.Unmarshal(params, &v); err != nil {
			return nil, err
		}
		return v, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	c, err := Dial(addr.String(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	payload := map[string]any{"metrics": []float64{1, 2, 3, 4, 5, 6, 7, 8}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out map[string]any
		if err := c.Call("echo", payload, &out); err != nil {
			b.Fatal(err)
		}
	}
}
