package rpc

import (
	"encoding/json"
	"fmt"
	"testing"
)

// BenchmarkManagedClientOverhead compares a supervised ManagedClient call
// against a bare Client call on the same echo server, isolating the cost of
// the breaker/reconnect bookkeeping per healthy round trip.
func BenchmarkManagedClientOverhead(b *testing.B) {
	srv := NewServer("bench")
	srv.Handle("echo", func(params json.RawMessage) (any, error) {
		var v map[string]any
		if err := json.Unmarshal(params, &v); err != nil {
			return nil, err
		}
		return v, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	payload := map[string]any{"metrics": []float64{1, 2, 3, 4, 5, 6, 7, 8}}

	b.Run("client=bare", func(b *testing.B) {
		c, err := Dial(addr.String(), "bench")
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var out map[string]any
			if err := c.Call("echo", payload, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("client=managed", func(b *testing.B) {
		m := NewManagedClient(addr.String(), "bench", Options{})
		defer func() { _ = m.Close() }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var out map[string]any
			if err := m.Call("echo", payload, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchEncode measures the CallBatch encode paths in isolation:
// building the full request frame body for a four-method batch (dir=request)
// and the matching server reply (dir=response) out of the pooled scratch
// buffer. This is the collection plane's per-node, per-tick hot path at
// 1000-node scale, so both directions are held to 0 allocs/op in CI.
func BenchmarkBatchEncode(b *testing.B) {
	calls := []BatchCall{
		{Method: "sadc.node"},
		{Method: "sadc.net", Params: json.RawMessage(`{"ifaces":["eth0","eth1"]}`)},
		{Method: "sadc.proc", Params: json.RawMessage(`{"pids":[3001,3002]}`)},
		{Method: "hadoop_log.vectors", Params: json.RawMessage(`{"kind":"tasktracker"}`)},
	}
	b.Run("dir=request", func(b *testing.B) {
		b.ReportAllocs()
		var total int
		for i := 0; i < b.N; i++ {
			bufp := batchScratch.Get().(*[]byte)
			body, err := appendBatchRequest((*bufp)[:0], uint64(i+1), calls)
			if err != nil {
				b.Fatal(err)
			}
			total += len(body)
			*bufp = body[:0]
			batchScratch.Put(bufp)
		}
		if total == 0 {
			b.Fatal("encoded nothing")
		}
	})
	b.Run("dir=response", func(b *testing.B) {
		results := []batchResult{
			{ID: 0, Result: json.RawMessage(`{"warmup":false,"node":[1,2,3,4,5,6,7,8]}`)},
			{ID: 1, Result: json.RawMessage(`{"warmup":false,"net":{"eth0":[1,2],"eth1":[3,4]}}`)},
			{ID: 2, Error: "no such pid"},
			{ID: 3, Result: json.RawMessage(`{"vectors":[]}`)},
		}
		b.ReportAllocs()
		var total int
		for i := 0; i < b.N; i++ {
			bufp := batchScratch.Get().(*[]byte)
			body := appendBatchResponse((*bufp)[:0], uint64(i+1), results)
			total += len(body)
			*bufp = body[:0]
			batchScratch.Put(bufp)
		}
		if total == 0 {
			b.Fatal("encoded nothing")
		}
	})
}

// benchWireSchema is a sadc-shaped 64-column stream schema.
func benchWireSchema() StreamSchema {
	cols := make([]string, 64)
	for i := range cols {
		cols[i] = fmt.Sprintf("metric_%02d", i)
	}
	return StreamSchema{Method: "sadc.metrics", Node: "bench", Groups: []ColumnGroup{{Name: "node", Columns: cols}}}
}

// benchWireTick mutates the slowly-changing columns of a 64-column vector:
// six columns drift per tick, the rest hold still — the shape sadc vectors
// have between load changes.
func benchWireTick(vals []float64, tick int) {
	for j := 0; j < 6; j++ {
		c := (j * 11) % len(vals)
		vals[c] += float64(tick%7) + 0.5
	}
}

// BenchmarkColumnarEncode measures one steady-state row encode (64 columns,
// six changed). Held to 0 allocs/op in CI: every frame, all tick long, must
// come out of the encoder's reused buffers.
func BenchmarkColumnarEncode(b *testing.B) {
	enc := NewColumnarEncoder(benchWireSchema())
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i) * 1.25
	}
	// Warm up: emit the schema frame and grow the buffers once.
	enc.Begin()
	_ = enc.AppendRow(0, false, nil, vals)
	_ = enc.Finish()

	b.ReportAllocs()
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		benchWireTick(vals, i)
		enc.Begin()
		if err := enc.AppendRow(int64(i+1)*1e9, false, nil, vals); err != nil {
			b.Fatal(err)
		}
		total += len(enc.Finish())
	}
	if total == 0 {
		b.Fatal("encoded nothing")
	}
}

// BenchmarkColumnarDecode measures one steady-state frame decode. A cycle of
// pre-encoded frames is replayed (the value walk is periodic, so the delta
// state lines up at the wrap, where only the sequence counter is rewound).
// Held to 0 allocs/op in CI.
func BenchmarkColumnarDecode(b *testing.B) {
	const cycle = 1024
	enc := NewColumnarEncoder(benchWireSchema())
	vals := make([]float64, 64)

	// Prime frame: schema + initial values.
	enc.Begin()
	_ = enc.AppendRow(0, false, nil, vals)
	prime := append([]byte(nil), enc.Finish()...)

	// The toggling walk returns to its start state every 2 ticks, so an
	// even-length cycle replays cleanly.
	frames := make([][]byte, cycle)
	for i := range frames {
		for j := 0; j < 6; j++ {
			c := (j * 11) % len(vals)
			if i%2 == 0 {
				vals[c] += 1.5
			} else {
				vals[c] -= 1.5
			}
		}
		enc.Begin()
		if err := enc.AppendRow(int64(i+1)*1e9, false, nil, vals); err != nil {
			b.Fatal(err)
		}
		frames[i] = append([]byte(nil), enc.Finish()...)
	}

	dec := NewColumnarDecoder()
	if err := dec.Decode(prime); err != nil {
		b.Fatal(err)
	}
	primeSeq := dec.seq

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%cycle == 0 {
			dec.seq = primeSeq // rewind the replay cycle
		}
		if err := dec.Decode(frames[i%cycle]); err != nil {
			b.Fatal(err)
		}
		if len(dec.Rows()) != 1 {
			b.Fatal("wrong row count")
		}
	}
}

// wireBenchJSONResponse mirrors the sadc.node wire struct without importing
// the modules package.
type wireBenchJSONResponse struct {
	Warmup bool      `json:"warmup,omitempty"`
	Node   []float64 `json:"node,omitempty"`
}

// BenchmarkWireFormat compares the per-tick wire work of the JSON call path
// against the columnar stream path for N nodes of slowly-changing 64-column
// vectors: encode + decode cost in ns (one iteration is one tick across all
// nodes) and bytes on the wire per tick (reported as wire-B/tick). The
// wire= sub-name split pairs the samples for benchstat.
func BenchmarkWireFormat(b *testing.B) {
	for _, nodes := range []int{128, 512, 1024} {
		makeVals := func() [][]float64 {
			vs := make([][]float64, nodes)
			for n := range vs {
				vs[n] = make([]float64, 64)
				for c := range vs[n] {
					vs[n][c] = float64(n*64+c) * 1.25
				}
			}
			return vs
		}

		b.Run(fmt.Sprintf("wire=json/nodes=%d", nodes), func(b *testing.B) {
			vals := makeVals()
			var out wireBenchJSONResponse
			var bytesTotal int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for n := 0; n < nodes; n++ {
					benchWireTick(vals[n], i)
					body, err := json.Marshal(response{ID: uint64(i + 1),
						Result: mustMarshal(wireBenchJSONResponse{Node: vals[n]})})
					if err != nil {
						b.Fatal(err)
					}
					bytesTotal += 4 + len(body) // frame header + body
					var resp response
					if err := json.Unmarshal(body, &resp); err != nil {
						b.Fatal(err)
					}
					if err := json.Unmarshal(resp.Result, &out); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(bytesTotal)/float64(b.N), "wire-B/tick")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nodes*64), "ns/metric")
		})

		b.Run(fmt.Sprintf("wire=columnar/nodes=%d", nodes), func(b *testing.B) {
			vals := makeVals()
			encs := make([]*ColumnarEncoder, nodes)
			decs := make([]*ColumnarDecoder, nodes)
			for n := range encs {
				encs[n] = NewColumnarEncoder(benchWireSchema())
				decs[n] = NewColumnarDecoder()
				// Schema exchange happens once per stream, off the clock.
				encs[n].Begin()
				_ = encs[n].AppendRow(0, false, nil, vals[n])
				if err := decs[n].Decode(encs[n].Finish()); err != nil {
					b.Fatal(err)
				}
			}
			var bytesTotal int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for n := 0; n < nodes; n++ {
					benchWireTick(vals[n], i)
					encs[n].Begin()
					if err := encs[n].AppendRow(int64(i+1)*1e9, false, nil, vals[n]); err != nil {
						b.Fatal(err)
					}
					body := encs[n].Finish()
					bytesTotal += 4 + len(body)
					if err := decs[n].Decode(body); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(bytesTotal)/float64(b.N), "wire-B/tick")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nodes*64), "ns/metric")
		})
	}
}

func mustMarshal(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// BenchmarkBatchRoundTrip compares N sequential calls per tick against one
// batched frame carrying the same N methods, over real loopback TCP. The
// mode suffix pairs the samples for benchstat.
func BenchmarkBatchRoundTrip(b *testing.B) {
	const methods = 4
	srv := NewServer("bench")
	srv.Handle("echo", func(params json.RawMessage) (any, error) {
		var v map[string]any
		if err := json.Unmarshal(params, &v); err != nil {
			return nil, err
		}
		return v, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	params := json.RawMessage(`{"metrics":[1,2,3,4,5,6,7,8]}`)

	b.Run("mode=serial", func(b *testing.B) {
		c, err := Dial(addr.String(), "bench")
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < methods; j++ {
				var out map[string]any
				if err := c.Call("echo", params, &out); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("mode=batch", func(b *testing.B) {
		c, err := Dial(addr.String(), "bench")
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		outs := make([]map[string]any, methods)
		calls := make([]BatchCall, methods)
		for j := range calls {
			calls[j] = BatchCall{Method: "echo", Params: params, Result: &outs[j]}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.CallBatch(calls); err != nil {
				b.Fatal(err)
			}
			for j := range calls {
				if calls[j].Err != nil {
					b.Fatal(calls[j].Err)
				}
			}
		}
	})
}

func BenchmarkCallRoundTrip(b *testing.B) {
	srv := NewServer("bench")
	srv.Handle("echo", func(params json.RawMessage) (any, error) {
		var v map[string]any
		if err := json.Unmarshal(params, &v); err != nil {
			return nil, err
		}
		return v, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	c, err := Dial(addr.String(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	payload := map[string]any{"metrics": []float64{1, 2, 3, 4, 5, 6, 7, 8}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out map[string]any
		if err := c.Call("echo", payload, &out); err != nil {
			b.Fatal(err)
		}
	}
}
