package rpc

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// BreakerSnapshot is the persistable circuit-breaker state of one managed
// connection, written into the control node's crash-safe state file so a
// restart does not reset breaker history or re-probe every known-dead node
// at once. It round-trips through JSON.
type BreakerSnapshot struct {
	Addr                string       `json:"addr"`
	State               BreakerState `json:"state"`
	ConsecutiveFailures int          `json:"consecutive_failures,omitempty"`
	TotalFailures       uint64       `json:"total_failures,omitempty"`
	Reconnects          uint64       `json:"reconnects,omitempty"`
	LastError           string       `json:"last_error,omitempty"`
	LastErrorAt         time.Time    `json:"last_error_at,omitempty"`
	StateChangedAt      time.Time    `json:"state_changed_at,omitempty"`
	// CooldownUntil is when the open breaker would have allowed its next
	// half-open probe. Informational on export; on import the probe time is
	// re-planned (staggered) by the restorer.
	CooldownUntil time.Time `json:"cooldown_until,omitempty"`
}

// ExportBreaker snapshots the breaker state for persistence.
func (m *ManagedClient) ExportBreaker() BreakerSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := BreakerSnapshot{
		Addr:                m.addr,
		State:               m.state,
		ConsecutiveFailures: m.fails,
		TotalFailures:       m.totalFails,
		Reconnects:          m.reconnects,
		LastErrorAt:         m.lastErrAt,
		StateChangedAt:      m.stateSince,
		CooldownUntil:       m.cooldownAt,
	}
	if m.lastErr != nil {
		s.LastError = m.lastErr.Error()
	}
	return s
}

// ImportBreaker restores persisted breaker state into a freshly constructed
// client. Counters (total failures, reconnects) resume their lineage values
// and are mirrored into the per-addr telemetry counters so a post-restart
// scrape still agrees with Health().
//
// A snapshot that was Open or HalfOpen is restored as Open with its next
// half-open probe at probeAt — the restorer staggers probeAt across clients
// (see ProbePlanner) so a restart does not re-probe every known-dead node in
// the same tick. A Closed snapshot keeps the breaker closed and probeAt is
// ignored.
func (m *ManagedClient) ImportBreaker(s BreakerSnapshot, probeAt time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fails = s.ConsecutiveFailures
	m.totalFails = s.TotalFailures
	m.reconnects = s.Reconnects
	m.mFails.Add(s.TotalFailures)
	m.mReconnects.Add(s.Reconnects)
	if s.LastError != "" {
		m.lastErr = errors.New(s.LastError)
		m.lastErrAt = s.LastErrorAt
	}
	if s.State == BreakerClosed {
		return
	}
	// Open and HalfOpen both reload as Open: a half-open probe's outcome was
	// lost with the old process, so the conservative read is "still open".
	// The existing do() gate turns it into a fresh half-open probe once
	// probeAt passes.
	m.toState(BreakerOpen, s.StateChangedAt)
	m.cooldownAt = probeAt
	// Let the probe actually dial at probeAt: clear any reconnect holdoff
	// and start the backoff ladder over.
	m.nextDialAt = time.Time{}
	m.backoff = m.opt.ReconnectBackoff
}

// ProbePlanner staggers half-open re-probe times for breakers restored from
// a snapshot. Restored-open breakers are assigned to consecutive slots of
// Budget probes each; slot k's probes land at a jittered instant inside the
// half-open window [base+k*Interval, base+(k+1)*Interval), so any one
// interval window — and with Interval at or above the tick period, any one
// tick — carries at most Budget probes instead of the full herd.
type ProbePlanner struct {
	mu       sync.Mutex
	base     time.Time
	interval time.Duration
	budget   int
	rand     func() float64
	planned  int
}

// NewProbePlanner plans probes starting at base. interval <= 0 defaults to
// 2s, budget <= 0 defaults to 4, rnd nil defaults to math/rand.Float64.
func NewProbePlanner(base time.Time, interval time.Duration, budget int, rnd func() float64) *ProbePlanner {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if budget <= 0 {
		budget = 4
	}
	if rnd == nil {
		rnd = rand.Float64
	}
	return &ProbePlanner{base: base, interval: interval, budget: budget, rand: rnd}
}

// Next returns the probe time for the next restored breaker.
func (p *ProbePlanner) Next() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	slot := p.planned / p.budget
	p.planned++
	jitter := time.Duration(p.rand() * float64(p.interval))
	if jitter >= p.interval {
		jitter = p.interval - 1
	}
	return p.base.Add(time.Duration(slot)*p.interval + jitter)
}

// Planned reports how many probes have been handed out.
func (p *ProbePlanner) Planned() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.planned
}
