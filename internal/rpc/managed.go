package rpc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/asdf-project/asdf/internal/telemetry"
)

// Caller is the call surface shared by Client and ManagedClient, letting the
// collection modules work against either a raw connection or a supervised
// one.
type Caller interface {
	Call(method string, params, result any) error
	Close() error
}

var (
	_ Caller = (*Client)(nil)
	_ Caller = (*ManagedClient)(nil)
)

// ErrBreakerOpen is returned (wrapped) by ManagedClient.Call while the
// node's circuit breaker is open: the call fails fast without touching the
// network.
var ErrBreakerOpen = errors.New("rpc: circuit breaker open")

// BreakerState is the circuit-breaker state of a managed connection.
type BreakerState int

// Circuit breaker states. A breaker starts Closed (calls flow); after
// Options.BreakerThreshold consecutive transport failures it trips to Open
// (calls fail fast); after Options.BreakerCooldown it moves to HalfOpen and
// lets a single probe call through — success re-closes it, failure re-opens
// it.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state for logs and health endpoints.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// MarshalJSON renders the state as its string form, so Health snapshots
// read naturally on the status endpoint.
func (s BreakerState) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the string form written by MarshalJSON, so Health
// snapshots round-trip over the status RPC.
func (s *BreakerState) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"closed"`:
		*s = BreakerClosed
	case `"open"`:
		*s = BreakerOpen
	case `"half-open"`:
		*s = BreakerHalfOpen
	default:
		return fmt.Errorf("rpc: unknown breaker state %s", b)
	}
	return nil
}

// Options tunes a ManagedClient. The zero value selects the defaults noted
// on each field.
type Options struct {
	// CallTimeout is the per-call deadline (default 10s).
	CallTimeout time.Duration
	// ReconnectBackoff is the initial delay between reconnect attempts;
	// it doubles per consecutive failure, with jitter (default 100ms).
	ReconnectBackoff time.Duration
	// MaxBackoff caps the reconnect delay (default 10s).
	MaxBackoff time.Duration
	// BreakerThreshold is the number of consecutive transport failures
	// that trips the breaker open (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting a
	// half-open probe through (default 2s).
	BreakerCooldown time.Duration

	// Clock supplies "now" for backoff and cooldown bookkeeping; defaults
	// to time.Now. The simulation harness injects virtual time so breaker
	// timing composes with virtual-clock test runs.
	Clock func() time.Time
	// Rand supplies jitter in [0,1); defaults to math/rand. Tests inject
	// a constant for determinism.
	Rand func() float64
	// Dial opens the underlying connection; defaults to Dial. Tests
	// inject failing or counting dialers.
	Dial func(addr, clientName string, opts ...DialOption) (*Client, error)

	// Metrics, when non-nil, registers per-connection telemetry labeled by
	// the daemon address: call counts and latency, transport failures,
	// reconnects, and a breaker-state gauge. Two managed clients
	// supervising the same address share series (registration is
	// idempotent), which only matters for degenerate configurations that
	// point two instances at one daemon.
	Metrics *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.CallTimeout <= 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 10 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.Rand == nil {
		o.Rand = rand.Float64
	}
	if o.Dial == nil {
		o.Dial = Dial
	}
	return o
}

// Health is a point-in-time snapshot of a managed connection, suitable for
// logs, tests, and a future metrics endpoint.
type Health struct {
	// Addr is the remote daemon address.
	Addr string
	// State is the breaker state at snapshot time.
	State BreakerState
	// Connected reports whether a live connection is held.
	Connected bool
	// ConsecutiveFailures counts transport failures since the last
	// success.
	ConsecutiveFailures int
	// TotalFailures counts all transport failures over the client's life.
	TotalFailures uint64
	// Reconnects counts successful dials (the first connect included).
	Reconnects uint64
	// LastError is the most recent transport error, empty if none.
	LastError string
	// LastErrorAt is when LastError happened.
	LastErrorAt time.Time
	// StateChangedAt is when State was last entered.
	StateChangedAt time.Time
	// BytesSent and BytesReceived are exact wire bytes across every
	// connection this client has opened, closed connections included —
	// the live view of the Table 4 bandwidth accounting.
	BytesSent     uint64
	BytesReceived uint64
}

// ManagedClient supervises one node's RPC connection: it dials lazily,
// reconnects after transport failures with exponential backoff plus jitter,
// and trips a per-node circuit breaker after repeated failures so a dead
// node costs an error return, not a network timeout, on every collection
// iteration. The zero value is not usable; create with NewManagedClient.
//
// Remote handler errors (RemoteError) prove the node is alive and do not
// count as failures. Calls are serialized, matching Client's semantics.
type ManagedClient struct {
	addr string
	name string
	opt  Options

	mu         sync.Mutex
	client     *Client
	closed     bool
	state      BreakerState
	stateSince time.Time
	cooldownAt time.Time // open state: when a half-open probe is allowed
	fails      int       // consecutive transport failures
	totalFails uint64
	reconnects uint64
	lastErr    error
	lastErrAt  time.Time
	backoff    time.Duration // next reconnect delay
	nextDialAt time.Time     // no dialing before this instant

	// accumulated wire bytes of connections already closed
	closedSent, closedRecv uint64
	// live-connection bytes already flushed into the wire-byte counters
	flushedSent, flushedRecv uint64

	// Telemetry handles (nil without Options.Metrics; nil-safe). The
	// counters move at exactly the points the fields above change, so a
	// scrape agrees with Health() on a quiescent client.
	mCalls       *telemetry.Counter
	mFails       *telemetry.Counter
	mReconnects  *telemetry.Counter
	mBatchItems  *telemetry.Counter
	mWireSent    *telemetry.Counter
	mWireRecv    *telemetry.Counter
	mBreaker     *telemetry.Gauge
	mCallSeconds *telemetry.Histogram
}

// NewManagedClient supervises the daemon at addr. No connection is opened
// until the first Call, so construction never fails and a daemon that is
// down at start-up is simply retried by the caller's normal schedule.
func NewManagedClient(addr, clientName string, opt Options) *ManagedClient {
	o := opt.withDefaults()
	m := &ManagedClient{
		addr:       addr,
		name:       clientName,
		opt:        o,
		state:      BreakerClosed,
		stateSince: o.Clock(),
		backoff:    o.ReconnectBackoff,
	}
	if reg := o.Metrics; reg != nil {
		al := telemetry.L("addr", addr)
		m.mCalls = reg.Counter("asdf_rpc_calls_total",
			"Calls attempted on a managed connection, breaker fast-fails included.", al)
		m.mFails = reg.Counter("asdf_rpc_transport_failures_total",
			"Transport failures (dial or call) on a managed connection.", al)
		m.mReconnects = reg.Counter("asdf_rpc_reconnects_total",
			"Successful dials, the first connect included.", al)
		m.mBatchItems = reg.Counter("asdf_rpc_batch_items_total",
			"Method invocations carried inside batched request frames.", al)
		m.mWireSent = reg.Counter("asdf_rpc_wire_bytes_sent_total",
			"Exact wire bytes sent on a managed connection, reconnects included.", al)
		m.mWireRecv = reg.Counter("asdf_rpc_wire_bytes_received_total",
			"Exact wire bytes received on a managed connection, reconnects included.", al)
		m.mBreaker = reg.Gauge("asdf_rpc_breaker_state",
			"Circuit-breaker state: 0 closed, 1 open, 2 half-open.", al)
		m.mCallSeconds = reg.Histogram("asdf_rpc_call_seconds",
			"Wall-clock latency of calls that reached the network.", nil, al)
	}
	return m
}

// Addr returns the remote address this client supervises.
func (m *ManagedClient) Addr() string { return m.addr }

// Call invokes method on the managed connection, dialing or reconnecting as
// needed. While the breaker is open it fails fast with an error wrapping
// ErrBreakerOpen. Transport failures close the connection; the next call
// redials once its backoff delay has elapsed.
func (m *ManagedClient) Call(method string, params, result any) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.do(func(c *Client) error { return c.Call(method, params, result) })
}

// CallBatch sends every call in one supervised round trip (one request
// frame, one response frame; see Client.CallBatch). The whole batch counts
// as a single call against the breaker and backoff bookkeeping: a transport
// failure anywhere in the frame is one failure, and per-item handler errors
// (delivered in each call's Err) prove the node alive, exactly as a
// RemoteError does on Call.
func (m *ManagedClient) CallBatch(calls []BatchCall) error {
	if len(calls) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mBatchItems.Add(uint64(len(calls)))
	return m.do(func(c *Client) error { return c.CallBatch(calls) })
}

// do runs one supervised round trip: breaker gate, lazy dial under backoff,
// the call itself, then success/failure accounting. The caller must hold
// m.mu.
func (m *ManagedClient) do(call func(*Client) error) error {
	if m.closed {
		return ErrClosed
	}
	m.mCalls.Inc()
	now := m.opt.Clock()

	if m.state == BreakerOpen {
		if now.Before(m.cooldownAt) {
			return fmt.Errorf("%w: node %s (%d consecutive failures, last: %v)",
				ErrBreakerOpen, m.addr, m.fails, m.lastErr)
		}
		// Cooldown over: let this call through as the half-open probe.
		m.toState(BreakerHalfOpen, now)
		m.nextDialAt = time.Time{}
	}

	if m.client == nil {
		if now.Before(m.nextDialAt) {
			// Inside the reconnect backoff window: fail fast without
			// hammering the network. Not counted as a new failure.
			return fmt.Errorf("rpc: node %s reconnect pending (retry at %s, last: %v)",
				m.addr, m.nextDialAt.Format(time.RFC3339Nano), m.lastErr)
		}
		c, err := m.opt.Dial(m.addr, m.name, WithCallTimeout(m.opt.CallTimeout))
		if err != nil {
			m.onFailure(now, err)
			return fmt.Errorf("rpc: node %s unreachable: %w", m.addr, err)
		}
		m.client = c
		m.flushedSent, m.flushedRecv = 0, 0
		m.reconnects++
		m.mReconnects.Inc()
	}

	var err error
	if m.mCallSeconds != nil {
		// Latency is wall-clock even under an injected virtual Clock: the
		// histogram reports real network time, not simulated time.
		start := time.Now()
		err = call(m.client)
		m.mCallSeconds.Observe(time.Since(start).Seconds())
	} else {
		err = call(m.client)
	}
	m.flushWireBytes()
	var remote *RemoteError
	if err == nil || errors.As(err, &remote) {
		// The node answered: transport is healthy even if the handler
		// returned an application error.
		m.onSuccess(now)
		return err
	}

	// Transport failure: drop the connection so the next call redials.
	s, r := m.client.Stats()
	m.closedSent += s
	m.closedRecv += r
	_ = m.client.Close()
	m.client = nil
	m.onFailure(now, err)
	return fmt.Errorf("rpc: node %s: %w", m.addr, err)
}

// flushWireBytes moves the live connection's not-yet-counted wire bytes into
// the per-addr telemetry counters. Called after every round trip (and on
// Close) so scraped totals track Stats to within one in-flight call. The
// caller must hold m.mu.
func (m *ManagedClient) flushWireBytes() {
	if m.client == nil {
		return
	}
	s, r := m.client.Stats()
	m.mWireSent.Add(s - m.flushedSent)
	m.mWireRecv.Add(r - m.flushedRecv)
	m.flushedSent, m.flushedRecv = s, r
}

// onSuccess resets failure bookkeeping and re-closes the breaker.
func (m *ManagedClient) onSuccess(now time.Time) {
	m.fails = 0
	m.backoff = m.opt.ReconnectBackoff
	m.nextDialAt = time.Time{}
	if m.state != BreakerClosed {
		m.toState(BreakerClosed, now)
	}
}

// onFailure records a transport failure, schedules the next reconnect with
// exponential backoff plus jitter, and trips the breaker when warranted.
func (m *ManagedClient) onFailure(now time.Time, err error) {
	m.fails++
	m.totalFails++
	m.mFails.Inc()
	m.lastErr = err
	m.lastErrAt = now

	// Full jitter on the current backoff: delay in [backoff/2, backoff].
	delay := m.backoff/2 + time.Duration(m.opt.Rand()*float64(m.backoff/2))
	m.nextDialAt = now.Add(delay)
	m.backoff *= 2
	if m.backoff > m.opt.MaxBackoff {
		m.backoff = m.opt.MaxBackoff
	}

	switch {
	case m.state == BreakerHalfOpen:
		// Failed probe: back to open for another cooldown.
		m.toState(BreakerOpen, now)
		m.cooldownAt = now.Add(m.opt.BreakerCooldown)
	case m.state == BreakerClosed && m.fails >= m.opt.BreakerThreshold:
		m.toState(BreakerOpen, now)
		m.cooldownAt = now.Add(m.opt.BreakerCooldown)
	}
}

func (m *ManagedClient) toState(s BreakerState, now time.Time) {
	m.state = s
	m.stateSince = now
	m.mBreaker.Set(float64(s))
}

// Health returns a point-in-time snapshot of the connection.
func (m *ManagedClient) Health() Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := Health{
		Addr:                m.addr,
		State:               m.state,
		Connected:           m.client != nil,
		ConsecutiveFailures: m.fails,
		TotalFailures:       m.totalFails,
		Reconnects:          m.reconnects,
		LastErrorAt:         m.lastErrAt,
		StateChangedAt:      m.stateSince,
	}
	if m.lastErr != nil {
		h.LastError = m.lastErr.Error()
	}
	h.BytesSent, h.BytesReceived = m.closedSent, m.closedRecv
	if m.client != nil {
		s, r := m.client.Stats()
		h.BytesSent += s
		h.BytesReceived += r
	}
	return h
}

// Stats reports wire bytes across every connection this client has opened,
// closed connections included, preserving the Table 4 bandwidth accounting
// under reconnects.
func (m *ManagedClient) Stats() (bytesSent, bytesReceived uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	bytesSent, bytesReceived = m.closedSent, m.closedRecv
	if m.client != nil {
		s, r := m.client.Stats()
		bytesSent += s
		bytesReceived += r
	}
	return bytesSent, bytesReceived
}

// Close tears down the connection, if any. Subsequent calls return
// ErrClosed.
func (m *ManagedClient) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if m.client != nil {
		m.flushWireBytes()
		err := m.client.Close()
		m.client = nil
		return err
	}
	return nil
}
