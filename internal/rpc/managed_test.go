package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic backoff and
// cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newEchoServer starts a server whose "echo" method returns its params.
func newEchoServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer("echo-test")
	srv.Handle("echo", func(params json.RawMessage) (any, error) {
		return params, nil
	})
	srv.Handle("boom", func(json.RawMessage) (any, error) {
		return nil, errors.New("handler exploded")
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, addr.String()
}

// refusedAddr returns an address that actively refuses connections.
func refusedAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

// managedOpts returns deterministic options on the fake clock: no jitter,
// tiny backoff, threshold 3, 2s cooldown.
func managedOpts(clk *fakeClock) Options {
	return Options{
		CallTimeout:      2 * time.Second,
		ReconnectBackoff: 10 * time.Millisecond,
		MaxBackoff:       80 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  2 * time.Second,
		Clock:            clk.now,
		Rand:             func() float64 { return 1.0 },
	}
}

func TestManagedClientCallAndHealth(t *testing.T) {
	_, addr := newEchoServer(t)
	clk := newFakeClock()
	mc := NewManagedClient(addr, "test", managedOpts(clk))
	defer func() { _ = mc.Close() }()

	var out string
	if err := mc.Call("echo", "hello", &out); err != nil {
		t.Fatal(err)
	}
	if out != "hello" {
		t.Fatalf("echo returned %q", out)
	}
	h := mc.Health()
	if h.State != BreakerClosed || !h.Connected || h.Reconnects != 1 || h.ConsecutiveFailures != 0 {
		t.Errorf("unexpected health after success: %+v", h)
	}
	if h.Addr != addr {
		t.Errorf("health addr = %q, want %q", h.Addr, addr)
	}
}

func TestManagedClientRemoteErrorIsNotATransportFailure(t *testing.T) {
	_, addr := newEchoServer(t)
	clk := newFakeClock()
	mc := NewManagedClient(addr, "test", managedOpts(clk))
	defer func() { _ = mc.Close() }()

	err := mc.Call("boom", nil, nil)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	h := mc.Health()
	if h.State != BreakerClosed || h.ConsecutiveFailures != 0 || h.TotalFailures != 0 {
		t.Errorf("remote error counted as transport failure: %+v", h)
	}
}

func TestManagedClientBreakerOpensAfterThreshold(t *testing.T) {
	addr := refusedAddr(t)
	clk := newFakeClock()
	dials := 0
	opt := managedOpts(clk)
	baseDial := opt.withDefaults().Dial
	opt.Dial = func(a, n string, os ...DialOption) (*Client, error) {
		dials++
		return baseDial(a, n, os...)
	}
	mc := NewManagedClient(addr, "test", opt)
	defer func() { _ = mc.Close() }()

	// Three failing calls trip the breaker (threshold 3). Advance the
	// clock past the backoff window between attempts so each call
	// actually dials.
	for i := 0; i < 3; i++ {
		if err := mc.Call("echo", nil, nil); err == nil {
			t.Fatal("call against refused addr succeeded")
		}
		clk.advance(200 * time.Millisecond)
	}
	h := mc.Health()
	if h.State != BreakerOpen {
		t.Fatalf("breaker state = %v after %d failures, want open", h.State, h.ConsecutiveFailures)
	}
	if h.ConsecutiveFailures != 3 || h.TotalFailures != 3 {
		t.Errorf("failure counters: %+v", h)
	}
	if h.LastError == "" {
		t.Error("health is missing the last error")
	}

	// While open, calls fail fast with ErrBreakerOpen and never dial.
	dialsBefore := dials
	for i := 0; i < 5; i++ {
		err := mc.Call("echo", nil, nil)
		if !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("open breaker returned %v, want ErrBreakerOpen", err)
		}
	}
	if dials != dialsBefore {
		t.Errorf("open breaker still dialed: %d extra attempts", dials-dialsBefore)
	}
}

func TestManagedClientHalfOpenProbeFailureReopens(t *testing.T) {
	addr := refusedAddr(t)
	clk := newFakeClock()
	mc := NewManagedClient(addr, "test", managedOpts(clk))
	defer func() { _ = mc.Close() }()

	for i := 0; i < 3; i++ {
		_ = mc.Call("echo", nil, nil)
		clk.advance(200 * time.Millisecond)
	}
	if s := mc.Health().State; s != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", s)
	}

	// After the cooldown a probe is let through; it fails (addr still
	// refused), so the breaker re-opens.
	clk.advance(3 * time.Second)
	if err := mc.Call("echo", nil, nil); errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe call was rejected by the breaker: %v", err)
	} else if err == nil {
		t.Fatal("probe against refused addr succeeded")
	}
	if s := mc.Health().State; s != BreakerOpen {
		t.Fatalf("breaker state after failed probe = %v, want open", s)
	}
	// And the very next call fails fast again.
	if err := mc.Call("echo", nil, nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want fast-fail after failed probe, got %v", err)
	}
}

func TestManagedClientHalfOpenProbeSuccessRecloses(t *testing.T) {
	// Reserve an address, leave it refused to trip the breaker, then
	// bring a server up on it and watch the probe re-attach.
	addr := refusedAddr(t)
	clk := newFakeClock()
	mc := NewManagedClient(addr, "test", managedOpts(clk))
	defer func() { _ = mc.Close() }()

	for i := 0; i < 3; i++ {
		_ = mc.Call("echo", nil, nil)
		clk.advance(200 * time.Millisecond)
	}
	if s := mc.Health().State; s != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", s)
	}

	srv := NewServer("echo-test")
	srv.Handle("echo", func(params json.RawMessage) (any, error) { return params, nil })
	if _, err := srv.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer func() { _ = srv.Close() }()

	clk.advance(3 * time.Second) // past cooldown: next call is the probe
	var out string
	if err := mc.Call("echo", "back", &out); err != nil {
		t.Fatalf("probe against revived server failed: %v", err)
	}
	if out != "back" {
		t.Fatalf("probe echoed %q", out)
	}
	h := mc.Health()
	if h.State != BreakerClosed || h.ConsecutiveFailures != 0 {
		t.Errorf("breaker did not re-close after successful probe: %+v", h)
	}
	if h.Reconnects == 0 {
		t.Error("successful probe did not count a reconnect")
	}
}

func TestManagedClientReconnectsAfterDroppedConns(t *testing.T) {
	srv, addr := newEchoServer(t)
	clk := newFakeClock()
	mc := NewManagedClient(addr, "test", managedOpts(clk))
	defer func() { _ = mc.Close() }()

	if err := mc.Call("echo", 1, nil); err != nil {
		t.Fatal(err)
	}
	if n := srv.DropConns(); n != 1 {
		t.Fatalf("DropConns dropped %d connections, want 1", n)
	}
	// The in-flight connection is gone: the next call fails in transit...
	if err := mc.Call("echo", 2, nil); err == nil {
		t.Fatal("call on severed connection succeeded")
	}
	// ...and after the backoff window the client silently reconnects.
	clk.advance(time.Second)
	if err := mc.Call("echo", 3, nil); err != nil {
		t.Fatalf("reconnect call failed: %v", err)
	}
	h := mc.Health()
	if h.Reconnects != 2 || h.State != BreakerClosed {
		t.Errorf("after reconnect: %+v", h)
	}
}

func TestManagedClientBackoffGatesDialing(t *testing.T) {
	addr := refusedAddr(t)
	clk := newFakeClock()
	dials := 0
	opt := managedOpts(clk)
	opt.BreakerThreshold = 100 // keep the breaker out of this test
	baseDial := opt.withDefaults().Dial
	opt.Dial = func(a, n string, os ...DialOption) (*Client, error) {
		dials++
		return baseDial(a, n, os...)
	}
	mc := NewManagedClient(addr, "test", opt)
	defer func() { _ = mc.Close() }()

	_ = mc.Call("echo", nil, nil) // dial #1 fails, schedules backoff
	if dials != 1 {
		t.Fatalf("dials = %d, want 1", dials)
	}
	// Calls inside the backoff window fail fast without dialing.
	for i := 0; i < 3; i++ {
		if err := mc.Call("echo", nil, nil); err == nil {
			t.Fatal("call inside backoff window succeeded")
		}
	}
	if dials != 1 {
		t.Fatalf("dials inside backoff window = %d, want 1", dials)
	}
	clk.advance(50 * time.Millisecond) // past the 10ms initial backoff
	_ = mc.Call("echo", nil, nil)
	if dials != 2 {
		t.Fatalf("dials after backoff = %d, want 2", dials)
	}
}

func TestServerFaultRefuseNew(t *testing.T) {
	srv, addr := newEchoServer(t)
	srv.SetFaults(Faults{RefuseNew: true})

	if _, err := Dial(addr, "test", WithCallTimeout(time.Second)); err == nil {
		t.Fatal("dial succeeded against a RefuseNew server")
	}
	srv.SetFaults(Faults{})
	c, err := Dial(addr, "test", WithCallTimeout(time.Second))
	if err != nil {
		t.Fatalf("dial after clearing faults: %v", err)
	}
	_ = c.Close()
}

func TestServerFaultDelayForcesTimeout(t *testing.T) {
	srv, addr := newEchoServer(t)
	srv.SetFaults(Faults{Delay: 300 * time.Millisecond})

	c, err := Dial(addr, "test", WithCallTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	start := time.Now()
	if err := c.Call("echo", "x", nil); err == nil {
		t.Fatal("call against delayed server beat its own timeout")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timed-out call took %v", elapsed)
	}
}

func TestManagedClientCloseIsTerminal(t *testing.T) {
	_, addr := newEchoServer(t)
	mc := NewManagedClient(addr, "test", Options{})
	if err := mc.Call("echo", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := mc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mc.Call("echo", nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close = %v, want ErrClosed", err)
	}
	if err := mc.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestBreakerStateString(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "BreakerState(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestManagedClientStatsSurviveReconnect(t *testing.T) {
	srv, addr := newEchoServer(t)
	clk := newFakeClock()
	mc := NewManagedClient(addr, "test", managedOpts(clk))
	defer func() { _ = mc.Close() }()

	if err := mc.Call("echo", "payload-one", nil); err != nil {
		t.Fatal(err)
	}
	s1, r1 := mc.Stats()
	if s1 == 0 || r1 == 0 {
		t.Fatalf("no bytes accounted: sent=%d recv=%d", s1, r1)
	}
	srv.DropConns()
	_ = mc.Call("echo", "payload-two", nil) // fails, flushes counters
	clk.advance(time.Second)
	if err := mc.Call("echo", "payload-three", nil); err != nil {
		t.Fatal(err)
	}
	s2, r2 := mc.Stats()
	if s2 <= s1 || r2 <= r1 {
		t.Errorf("stats lost bytes across reconnect: sent %d->%d recv %d->%d", s1, s2, r1, r2)
	}
}

func ExampleManagedClient() {
	srv := NewServer("example")
	srv.Handle("ping", func(json.RawMessage) (any, error) { return "pong", nil })
	addr, _ := srv.Listen("127.0.0.1:0")
	defer func() { _ = srv.Close() }()

	mc := NewManagedClient(addr.String(), "example-client", Options{
		BreakerThreshold: 3,
		CallTimeout:      time.Second,
	})
	defer func() { _ = mc.Close() }()
	var out string
	_ = mc.Call("ping", nil, &out)
	fmt.Println(out, mc.Health().State)
	// Output: pong closed
}
