package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

type echoParams struct {
	Text string `json:"text"`
}

func newTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer("test-service")
	srv.Handle("echo", func(params json.RawMessage) (any, error) {
		var p echoParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return p, nil
	})
	srv.Handle("add", func(params json.RawMessage) (any, error) {
		var nums []int
		if err := json.Unmarshal(params, &nums); err != nil {
			return nil, err
		}
		sum := 0
		for _, n := range nums {
			sum += n
		}
		return sum, nil
	})
	srv.Handle("fail", func(json.RawMessage) (any, error) {
		return nil, errors.New("deliberate failure")
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, addr.String()
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr, "test-client")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	var out echoParams
	if err := c.Call("echo", echoParams{Text: "hello"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Text != "hello" {
		t.Errorf("echo = %q", out.Text)
	}

	var sum int
	if err := c.Call("add", []int{1, 2, 3}, &sum); err != nil {
		t.Fatal(err)
	}
	if sum != 6 {
		t.Errorf("add = %d, want 6", sum)
	}
}

func TestHelloExchange(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr, "test-client")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if c.Service != "test-service" {
		t.Errorf("Service = %q", c.Service)
	}
	sort.Strings(c.Methods)
	want := []string{"add", "echo", "fail"}
	if len(c.Methods) != len(want) {
		t.Fatalf("Methods = %v", c.Methods)
	}
	for i := range want {
		if c.Methods[i] != want[i] {
			t.Errorf("Methods[%d] = %q, want %q", i, c.Methods[i], want[i])
		}
	}
}

func TestRemoteError(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr, "test-client")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	err = c.Call("fail", nil, nil)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("error = %v, want RemoteError", err)
	}
	if remote.Method != "fail" || !strings.Contains(remote.Message, "deliberate") {
		t.Errorf("remote = %+v", remote)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr, "test-client")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	err = c.Call("nonexistent", nil, nil)
	var remote *RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Message, "unknown method") {
		t.Errorf("error = %v, want unknown-method RemoteError", err)
	}
}

func TestByteAccounting(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr, "test-client")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	sent0, recv0 := c.Stats()
	if sent0 == 0 || recv0 == 0 {
		t.Errorf("hello exchange should produce traffic: sent=%d recv=%d", sent0, recv0)
	}
	var out echoParams
	if err := c.Call("echo", echoParams{Text: strings.Repeat("x", 100)}, &out); err != nil {
		t.Fatal(err)
	}
	sent1, recv1 := c.Stats()
	if sent1 <= sent0 || recv1 <= recv0 {
		t.Errorf("call should increase both counters: %d->%d, %d->%d", sent0, sent1, recv0, recv1)
	}
	// The echo payload is ~100 bytes; per-call overhead should be modest.
	if sent1-sent0 > 400 {
		t.Errorf("per-call sent bytes = %d, expected < 400", sent1-sent0)
	}
}

func TestServerStatsAfterClose(t *testing.T) {
	srv, addr := newTestServer(t)
	c, err := Dial(addr, "test-client")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Call("echo", echoParams{Text: "hi"}, nil); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	// Server flushes connection byte counts when the connection closes.
	deadline := time.Now().Add(2 * time.Second)
	for {
		r, w := srv.Stats()
		if r > 0 && w > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server stats never updated: read=%d written=%d", r, w)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr, "test-client")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sum int
			if err := c.Call("add", []int{i, i}, &sum); err != nil {
				errs <- err
				return
			}
			if sum != 2*i {
				errs <- fmt.Errorf("add(%d,%d) = %d", i, i, sum)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMultipleClients(t *testing.T) {
	_, addr := newTestServer(t)
	for i := 0; i < 5; i++ {
		c, err := Dial(addr, fmt.Sprintf("client-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		var out echoParams
		if err := c.Call("echo", echoParams{Text: "m"}, &out); err != nil {
			t.Error(err)
		}
		_ = c.Close()
	}
}

func TestCallAfterClose(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr, "test-client")
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	if err := c.Call("echo", echoParams{}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Call after Close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("double Close = %v, want nil", err)
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	srv, addr := newTestServer(t)
	c, err := Dial(addr, "test-client")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("echo", echoParams{}, nil); err == nil {
		t.Error("call against closed server should fail")
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", "c", WithCallTimeout(100*time.Millisecond)); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestProtocolMismatch(t *testing.T) {
	// A raw server that answers hello with the wrong protocol version.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer func() { _ = conn.Close() }()
		var hello helloRequest
		if err := readFrame(conn, &hello); err != nil {
			return
		}
		_ = writeFrame(conn, helloResponse{Proto: 99, Service: "bogus"})
	}()
	if _, err := Dial(l.Addr().String(), "c"); err == nil || !strings.Contains(err.Error(), "protocol") {
		t.Errorf("Dial = %v, want protocol error", err)
	}
}

func TestHandleValidation(t *testing.T) {
	srv := NewServer("s")
	srv.Handle("m", func(json.RawMessage) (any, error) { return nil, nil })
	for _, fn := range []func(){
		func() { srv.Handle("m", func(json.RawMessage) (any, error) { return nil, nil }) },
		func() { srv.Handle("", func(json.RawMessage) (any, error) { return nil, nil }) },
		func() { srv.Handle("x", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLargePayload(t *testing.T) {
	_, addr := newTestServer(t)
	c, err := Dial(addr, "test-client")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	big := strings.Repeat("payload ", 64*1024) // ~512 kB
	var out echoParams
	if err := c.Call("echo", echoParams{Text: big}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Text != big {
		t.Error("large payload corrupted in transit")
	}
}

func TestCallTimeout(t *testing.T) {
	srv := NewServer("slow")
	srv.Handle("sleep", func(json.RawMessage) (any, error) {
		time.Sleep(2 * time.Second)
		return nil, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	c, err := Dial(addr.String(), "c", WithCallTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	start := time.Now()
	if err := c.Call("sleep", nil, nil); err == nil {
		t.Error("slow call should time out")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timeout took %v, want ~100ms", elapsed)
	}
}
