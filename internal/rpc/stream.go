package rpc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Metric streams: a negotiated upgrade from per-call JSON framing to the
// columnar delta codec. The client opens a stream with an ordinary JSON
// call (rpc.stream.open names the underlying method); the server pins a
// StreamSource and a ColumnarEncoder to the connection and replies with a
// stream id. From then on the client either pulls frames one at a time
// (rpc.stream.pull — request/response, same serialization discipline as any
// call) or, for a push-mode stream, grants credits (rpc.stream.credit, no
// response) and the server streams frames on its own cadence, one frame per
// credit. Binary frames are distinguished from JSON frames by the high bit
// of the 4-byte length header, so both kinds share one connection; a
// pre-columnar peer reading a binary frame sees an oversized length and
// fails cleanly rather than misparsing.
//
// Stream state lives on the connection on both sides. A reconnect therefore
// drops every stream with it, and the managed wrappers (StreamClient,
// ManagedSubscription) transparently reopen on the next use — the fresh
// server-side encoder re-sends the schema frame first, which resets the
// client decoder's delta state. This is also why a credit request needs no
// response: losing one loses the whole connection with it.

// Reserved stream method names. Like MethodBatch they are dispatched
// natively by the server; handlers cannot register them.
const (
	// MethodStreamOpen opens a stream: params {method, params, push,
	// period_ms}, result {stream}.
	MethodStreamOpen = "rpc.stream.open"
	// MethodStreamPull requests one frame from a pull-mode stream: params
	// {s}; the response is a binary columnar frame, or a JSON error frame.
	MethodStreamPull = "rpc.stream.pull"
	// MethodStreamCredit grants n frame credits to a push-mode stream:
	// params {s, n}. It has no response.
	MethodStreamCredit = "rpc.stream.credit"
)

func isStreamMethod(m string) bool {
	return m == MethodStreamOpen || m == MethodStreamPull || m == MethodStreamCredit
}

// binaryFrameFlag tags a frame's length header as a binary (columnar) body.
// The masked length obeys the same maxFrameBytes bound as JSON frames.
const binaryFrameFlag = uint32(1) << 31

// streamCreditCap bounds buffered credits per push stream; far beyond any
// sane window, it only guards against a runaway client.
const streamCreditCap = 1024

// writeBinaryFrame writes one length-prefixed binary frame, tagging the
// header's high bit so the receiver routes it to the columnar decoder.
func writeBinaryFrame(w io.Writer, body []byte) error {
	if len(body) > maxFrameBytes {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body))|binaryFrameFlag)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("rpc: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("rpc: write body: %w", err)
	}
	return nil
}

// readTaggedFrame reads one frame into *buf (grown as needed, reused
// otherwise) and reports whether it was a binary frame.
func readTaggedFrame(r io.Reader, buf *[]byte) (body []byte, isBinary bool, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, false, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	isBinary = n&binaryFrameFlag != 0
	n &^= binaryFrameFlag
	if n > maxFrameBytes {
		return nil, false, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	*buf = (*buf)[:n]
	if _, err := io.ReadFull(r, *buf); err != nil {
		return nil, false, fmt.Errorf("rpc: read body: %w", err)
	}
	return *buf, isBinary, nil
}

// FrameWriter is handed to a StreamSource's Collect to append rows to the
// frame being built. Errors stick: the first failed append fails the
// collect.
type FrameWriter struct {
	enc *ColumnarEncoder
	err error
}

// AppendRow adds one row to the in-progress frame; see
// ColumnarEncoder.AppendRow for the argument contract.
func (fw *FrameWriter) AppendRow(timeNanos int64, warmup bool, present []bool, values []float64) {
	if fw.err != nil {
		return
	}
	fw.err = fw.enc.AppendRow(timeNanos, warmup, present, values)
}

// StreamSource produces the rows of one open stream. Collect is called once
// per frame — per pull, or per granted credit in push mode — and must not
// retain the FrameWriter.
type StreamSource interface {
	Schema() StreamSchema
	Collect(fw *FrameWriter) error
}

// StreamHandlerFunc creates a StreamSource for one stream open. params is
// the raw JSON the client passed in the open request. Each open gets its
// own source, so per-stream state (rate baselines, log cursors) is isolated
// per client connection.
type StreamHandlerFunc func(params json.RawMessage) (StreamSource, error)

// HandleStream registers a stream handler for method. Registering a
// duplicate or reserved method panics, mirroring Handle.
func (s *Server) HandleStream(method string, h StreamHandlerFunc) {
	if method == "" || h == nil {
		panic("rpc: HandleStream requires a method name and handler")
	}
	if method == MethodBatch || isStreamMethod(method) {
		panic("rpc: " + method + " is reserved; the server dispatches it natively")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.streamHandlers[method]; dup {
		panic(fmt.Sprintf("rpc: stream method %q registered twice", method))
	}
	s.streamHandlers[method] = h
}

// Wire forms of the stream control calls.

type streamOpenRequest struct {
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
	Push   bool            `json:"push,omitempty"`
	// PeriodMS paces a push stream: minimum milliseconds between frames.
	// Zero pushes as fast as credits arrive (lockstep with the client).
	PeriodMS int64 `json:"period_ms,omitempty"`
}

type streamOpenResponse struct {
	Stream uint64 `json:"stream"`
}

type streamIDRequest struct {
	S uint64 `json:"s"`
	N int    `json:"n,omitempty"`
}

// serverStream is one open stream pinned to a connection.
type serverStream struct {
	id      uint64
	src     StreamSource
	enc     *ColumnarEncoder
	push    bool
	period  time.Duration
	credits chan struct{}
}

// connState is the per-connection serving state: the write mutex that
// serializes response frames with push frames, and the streams opened on
// this connection. It dies with the connection.
type connState struct {
	srv *Server
	cc  *countingConn

	writeMu sync.Mutex

	mu         sync.Mutex
	streams    map[uint64]*serverStream
	nextStream uint64

	done chan struct{}
}

func (cs *connState) write(v any) error {
	cs.writeMu.Lock()
	defer cs.writeMu.Unlock()
	return writeFrame(cs.cc, v)
}

func (cs *connState) writeRaw(body []byte) error {
	cs.writeMu.Lock()
	defer cs.writeMu.Unlock()
	return writeRawFrame(cs.cc, body)
}

func (cs *connState) writeBinary(body []byte) error {
	cs.writeMu.Lock()
	defer cs.writeMu.Unlock()
	return writeBinaryFrame(cs.cc, body)
}

func (cs *connState) lookup(id uint64) *serverStream {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.streams[id]
}

// openStream serves one MethodStreamOpen request.
func (cs *connState) openStream(req *request) response {
	var or streamOpenRequest
	if err := json.Unmarshal(req.Params, &or); err != nil {
		return response{ID: req.ID, Error: fmt.Sprintf("malformed stream open: %v", err)}
	}
	cs.srv.mu.Lock()
	h, ok := cs.srv.streamHandlers[or.Method]
	cs.srv.mu.Unlock()
	if !ok {
		return response{ID: req.ID, Error: fmt.Sprintf("rpc.stream: unsupported method %q", or.Method)}
	}
	src, err := h(or.Params)
	if err != nil {
		return response{ID: req.ID, Error: err.Error()}
	}

	st := &serverStream{
		src:    src,
		enc:    NewColumnarEncoder(src.Schema()),
		push:   or.Push,
		period: time.Duration(or.PeriodMS) * time.Millisecond,
	}
	if st.push {
		st.credits = make(chan struct{}, streamCreditCap)
	}

	cs.mu.Lock()
	if cs.streams == nil {
		cs.streams = make(map[uint64]*serverStream)
	}
	if len(cs.streams) >= maxStreamsPerConn {
		cs.mu.Unlock()
		return response{ID: req.ID, Error: fmt.Sprintf("rpc.stream: more than %d streams on one connection", maxStreamsPerConn)}
	}
	cs.nextStream++
	st.id = cs.nextStream
	cs.streams[st.id] = st
	cs.mu.Unlock()

	if st.push {
		go cs.pusher(st)
	}

	raw, err := json.Marshal(streamOpenResponse{Stream: st.id})
	if err != nil {
		return response{ID: req.ID, Error: fmt.Sprintf("marshal result: %v", err)}
	}
	return response{ID: req.ID, Result: raw}
}

// pullStream serves one MethodStreamPull request: collect one frame from the
// source and write it as a binary frame, or a JSON error frame. The
// returned error is a connection write failure.
func (cs *connState) pullStream(req *request) error {
	var pr streamIDRequest
	var st *serverStream
	var errMsg string
	if err := json.Unmarshal(req.Params, &pr); err != nil {
		errMsg = fmt.Sprintf("malformed stream pull: %v", err)
	} else if st = cs.lookup(pr.S); st == nil {
		errMsg = fmt.Sprintf("rpc.stream: unknown stream %d", pr.S)
	} else if st.push {
		errMsg = fmt.Sprintf("rpc.stream: stream %d is push-mode", pr.S)
	}

	var body []byte
	if errMsg == "" {
		st.enc.Begin()
		fw := FrameWriter{enc: st.enc}
		err := st.src.Collect(&fw)
		if err == nil {
			err = fw.err
		}
		if err != nil {
			errMsg = err.Error()
		} else {
			body = st.enc.Finish()
		}
	}

	if d := cs.srv.currentFaults().Delay; d > 0 {
		time.Sleep(d) // injected fault: slow node
	}
	if errMsg != "" {
		return cs.write(response{ID: req.ID, Error: errMsg})
	}
	return cs.writeBinary(body)
}

// creditStream serves one MethodStreamCredit request. Credits to unknown or
// pull-mode streams are dropped — the stream may have raced with a
// reconnect, and there is no response channel to report on.
func (cs *connState) creditStream(req *request) {
	var cr streamIDRequest
	if err := json.Unmarshal(req.Params, &cr); err != nil {
		return
	}
	st := cs.lookup(cr.S)
	if st == nil || !st.push {
		return
	}
	for i := 0; i < cr.N; i++ {
		select {
		case st.credits <- struct{}{}:
		default:
			return // credit buffer full; the client is not reading anyway
		}
	}
}

// pusher is the per-stream push goroutine: one collected frame per granted
// credit, paced to the stream's period. It exits when the connection dies
// (done closed, or a write fails).
func (cs *connState) pusher(st *serverStream) {
	var last time.Time
	for {
		select {
		case <-cs.done:
			return
		case <-st.credits:
		}
		if st.period > 0 && !last.IsZero() {
			if wait := st.period - time.Since(last); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-cs.done:
					t.Stop()
					return
				case <-t.C:
				}
			}
		}
		st.enc.Begin()
		fw := FrameWriter{enc: st.enc}
		err := st.src.Collect(&fw)
		if err == nil {
			err = fw.err
		}
		if d := cs.srv.currentFaults().Delay; d > 0 {
			time.Sleep(d) // injected fault: slow node
		}
		var werr error
		if err != nil {
			// Error frames ride as JSON with id 0; the subscriber surfaces
			// them as a RemoteError from its next Fetch.
			werr = cs.write(response{Error: fmt.Sprintf("rpc.stream %d: %v", st.id, err)})
		} else {
			werr = cs.writeBinary(st.enc.Finish())
		}
		if werr != nil {
			return
		}
		last = time.Now()
	}
}

// appendStreamRequest appends the request body for a pull or credit call —
// hand-rolled like appendBatchRequest so a pooled dst keeps the per-tick
// encode allocation-free.
func appendStreamRequest(dst []byte, id uint64, method string, stream uint64, n int) []byte {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendUint(dst, id, 10)
	dst = append(dst, `,"method":"`...)
	dst = append(dst, method...)
	dst = append(dst, `","params":{"s":`...)
	dst = strconv.AppendUint(dst, stream, 10)
	if n > 0 {
		dst = append(dst, `,"n":`...)
		dst = strconv.AppendInt(dst, int64(n), 10)
	}
	return append(dst, `}}`...)
}

// openStream performs the JSON open call and returns the stream id.
func (c *Client) openStream(method string, params json.RawMessage, push bool, period time.Duration) (uint64, error) {
	var resp streamOpenResponse
	req := streamOpenRequest{Method: method, Params: params, Push: push, PeriodMS: period.Milliseconds()}
	if err := c.Call(MethodStreamOpen, req, &resp); err != nil {
		return 0, err
	}
	return resp.Stream, nil
}

// pullStream requests one frame from a pull-mode stream and decodes it into
// dec. The encode path uses pooled scratch and the frame is read into the
// decoder's reused buffer, so the steady state allocates nothing.
func (c *Client) pullStream(id uint64, dec *ColumnarDecoder) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.nextID++
	reqID := c.nextID

	deadline := time.Now().Add(c.timeout)
	_ = c.conn.SetDeadline(deadline)
	defer func() { _ = c.conn.SetDeadline(time.Time{}) }()

	bufp := batchScratch.Get().(*[]byte)
	body := appendStreamRequest((*bufp)[:0], reqID, MethodStreamPull, id, 0)
	werr := writeRawFrame(c.conn, body)
	*bufp = body[:0]
	batchScratch.Put(bufp)
	if werr != nil {
		return werr
	}
	return c.readStreamFrame(dec, MethodStreamPull, reqID)
}

// fetchStream grants credits (if any) to a push-mode stream and reads the
// next frame. extra widens the read deadline beyond the call timeout to
// cover the server's push pacing.
func (c *Client) fetchStream(id uint64, dec *ColumnarDecoder, credits int, extra time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}

	deadline := time.Now().Add(c.timeout + extra)
	_ = c.conn.SetDeadline(deadline)
	defer func() { _ = c.conn.SetDeadline(time.Time{}) }()

	if credits > 0 {
		c.nextID++
		bufp := batchScratch.Get().(*[]byte)
		body := appendStreamRequest((*bufp)[:0], c.nextID, MethodStreamCredit, id, credits)
		werr := writeRawFrame(c.conn, body)
		*bufp = body[:0]
		batchScratch.Put(bufp)
		if werr != nil {
			return werr
		}
	}
	return c.readStreamFrame(dec, "rpc.stream", 0)
}

// readStreamFrame reads one frame: binary frames decode into dec, JSON
// frames must be error responses (a pull's error reply, or a push stream's
// in-band error frame with id 0).
func (c *Client) readStreamFrame(dec *ColumnarDecoder, method string, wantID uint64) error {
	body, isBin, err := readTaggedFrame(c.conn, &dec.buf)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return ErrClosed
		}
		return fmt.Errorf("rpc: call %s: %w", method, err)
	}
	if isBin {
		return dec.Decode(body)
	}
	var resp response
	if err := json.Unmarshal(body, &resp); err != nil {
		return fmt.Errorf("rpc: call %s: unmarshal: %w", method, err)
	}
	if wantID != 0 && resp.ID != 0 && resp.ID != wantID {
		return fmt.Errorf("rpc: call %s: response id %d, want %d", method, resp.ID, wantID)
	}
	if resp.Error != "" {
		return &RemoteError{Method: method, Message: resp.Error}
	}
	return fmt.Errorf("rpc: call %s: unexpected JSON frame on stream", method)
}

// IsStreamUnsupported reports whether err means the remote end does not
// support the requested stream — either a columnar-aware server without
// that stream method, or a pre-columnar server rejecting rpc.stream.open as
// an unknown method. Callers use it to fall back to the JSON path.
func IsStreamUnsupported(err error) bool {
	var re *RemoteError
	if !errors.As(err, &re) {
		return false
	}
	return strings.Contains(re.Message, "rpc.stream: unsupported method") ||
		strings.Contains(re.Message, "unknown method")
}

// StreamClient is a pull-mode stream on a ManagedClient. It transparently
// reopens the stream after a reconnect (fresh server encoder, schema
// resync), so every Pull rides the managed client's breaker, backoff, and
// deadline discipline.
type StreamClient struct {
	m      *ManagedClient
	method string
	params json.RawMessage
	dec    *ColumnarDecoder
	cur    *Client // connection the stream was opened on
	id     uint64
}

// Stream opens a pull-mode columnar stream for method. params is marshaled
// once; the stream (re)opens lazily on first Pull and after reconnects.
func (m *ManagedClient) Stream(method string, params any) (*StreamClient, error) {
	raw, err := marshalStreamParams(params)
	if err != nil {
		return nil, err
	}
	return &StreamClient{m: m, method: method, params: raw, dec: NewColumnarDecoder()}, nil
}

// Pull fetches and decodes one frame. The returned rows are valid until the
// next Pull.
func (sc *StreamClient) Pull() ([]StreamRow, error) {
	sc.m.mu.Lock()
	defer sc.m.mu.Unlock()
	err := sc.m.do(func(c *Client) error {
		if sc.cur != c {
			id, err := c.openStream(sc.method, sc.params, false, 0)
			if err != nil {
				return err
			}
			sc.dec.Reset()
			sc.id = id
			sc.cur = c
		}
		return c.pullStream(sc.id, sc.dec)
	})
	if err != nil {
		return nil, err
	}
	return sc.dec.Rows(), nil
}

// Schema returns the stream's schema once the first frame has arrived.
func (sc *StreamClient) Schema() (StreamSchema, bool) { return sc.dec.Schema() }

// ManagedSubscription is a push-mode stream on a ManagedClient. The server
// collects and sends frames on its own cadence, bounded by a credit window;
// Fetch tops the window up and blocks for the next frame. Like StreamClient
// it resubscribes transparently after a reconnect.
type ManagedSubscription struct {
	m      *ManagedClient
	method string
	params json.RawMessage
	period time.Duration
	window int

	dec         *ColumnarDecoder
	cur         *Client
	id          uint64
	outstanding int // credits granted, frames not yet received
}

// Subscribe opens a push-mode columnar stream. period paces the server's
// pushes (zero means lockstep with credit arrival); window is the maximum
// number of frames in flight (minimum 1 — the server never runs more than
// window collects ahead of the client).
func (m *ManagedClient) Subscribe(method string, params any, period time.Duration, window int) (*ManagedSubscription, error) {
	raw, err := marshalStreamParams(params)
	if err != nil {
		return nil, err
	}
	if window < 1 {
		window = 1
	}
	if window > streamCreditCap {
		window = streamCreditCap
	}
	return &ManagedSubscription{
		m: m, method: method, params: raw, period: period, window: window,
		dec: NewColumnarDecoder(),
	}, nil
}

// Fetch grants the server enough credit to fill the window and blocks for
// the next pushed frame. The returned rows are valid until the next Fetch.
func (sub *ManagedSubscription) Fetch() ([]StreamRow, error) {
	sub.m.mu.Lock()
	defer sub.m.mu.Unlock()
	err := sub.m.do(func(c *Client) error {
		if sub.cur != c {
			id, err := c.openStream(sub.method, sub.params, true, sub.period)
			if err != nil {
				return err
			}
			sub.dec.Reset()
			sub.id = id
			sub.cur = c
			sub.outstanding = 0
		}
		grant := sub.window - sub.outstanding
		if grant < 0 {
			grant = 0
		}
		if err := c.fetchStream(sub.id, sub.dec, grant, sub.period); err != nil {
			return err
		}
		sub.outstanding += grant - 1 // one frame was just consumed
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sub.dec.Rows(), nil
}

// Schema returns the stream's schema once the first frame has arrived.
func (sub *ManagedSubscription) Schema() (StreamSchema, bool) { return sub.dec.Schema() }

func marshalStreamParams(params any) (json.RawMessage, error) {
	if params == nil {
		return nil, nil
	}
	raw, err := json.Marshal(params)
	if err != nil {
		return nil, fmt.Errorf("rpc: marshal stream params: %w", err)
	}
	return raw, nil
}
