package rpc

import (
	"math"
	"math/rand"
	"testing"
)

func testSchema() StreamSchema {
	return StreamSchema{
		Method: "sadc.metrics",
		Node:   "node-7",
		Groups: []ColumnGroup{
			{Name: "node", Columns: []string{"cpu_user", "cpu_sys", "mem_used", "swap_used"}},
			{Name: "net:eth0", Columns: []string{"rx_bytes", "tx_bytes"}},
			{Name: "proc:42", Columns: []string{"rss", "utime", "stime"}},
		},
	}
}

// encodeRows runs one Begin/AppendRow*/Finish cycle and returns a copy of
// the frame bytes (Finish reuses its buffer).
func encodeRows(t *testing.T, enc *ColumnarEncoder, rows []StreamRow) []byte {
	t.Helper()
	enc.Begin()
	for _, r := range rows {
		if err := enc.AppendRow(r.TimeNanos, r.Warmup, r.Present, r.Values); err != nil {
			t.Fatalf("AppendRow: %v", err)
		}
	}
	return append([]byte(nil), enc.Finish()...)
}

func TestColumnarRoundTripBasic(t *testing.T) {
	schema := testSchema()
	enc := NewColumnarEncoder(schema)
	dec := NewColumnarDecoder()

	vals := []float64{1.5, 0, 3.25, -2, 1e9, 2e9, 100, 200, 300}
	body := encodeRows(t, enc, []StreamRow{{TimeNanos: 1_000_000_000, Values: vals}})
	if err := dec.Decode(body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, ok := dec.Schema()
	if !ok {
		t.Fatal("no schema after first frame")
	}
	if got.Method != schema.Method || got.Node != schema.Node || len(got.Groups) != 3 {
		t.Fatalf("schema mismatch: %+v", got)
	}
	if got.Groups[1].Name != "net:eth0" || got.Groups[1].Columns[1] != "tx_bytes" {
		t.Fatalf("group mismatch: %+v", got.Groups[1])
	}
	rows := dec.Rows()
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	if rows[0].TimeNanos != 1_000_000_000 || rows[0].Warmup {
		t.Fatalf("row header mismatch: %+v", rows[0])
	}
	for i, v := range vals {
		if rows[0].Values[i] != v {
			t.Fatalf("value[%d] = %v, want %v", i, rows[0].Values[i], v)
		}
	}
	for gi, p := range rows[0].Present {
		if !p {
			t.Fatalf("group %d not present", gi)
		}
	}
}

func TestColumnarIdleTickIsTiny(t *testing.T) {
	schema := testSchema()
	enc := NewColumnarEncoder(schema)
	dec := NewColumnarDecoder()

	vals := []float64{1.5, 0, 3.25, -2, 1e9, 2e9, 100, 200, 300}
	first := encodeRows(t, enc, []StreamRow{{TimeNanos: 1e9, Values: vals}})
	if err := dec.Decode(first); err != nil {
		t.Fatalf("decode first: %v", err)
	}
	// Same values, same time delta pattern: every group is one skip varint.
	idle := encodeRows(t, enc, []StreamRow{{TimeNanos: 2e9, Values: vals}})
	if err := dec.Decode(idle); err != nil {
		t.Fatalf("decode idle: %v", err)
	}
	// kind + seq + nrows + flags + bitmap + tdelta(~5B) + 3 skip varints.
	if len(idle) > 16 {
		t.Fatalf("idle frame is %d bytes, want <= 16", len(idle))
	}
	rows := dec.Rows()
	if len(rows) != 1 || rows[0].Values[4] != 1e9 {
		t.Fatalf("idle decode mismatch: %+v", rows)
	}
}

func TestColumnarPresenceTogglesWithoutResync(t *testing.T) {
	schema := testSchema()
	enc := NewColumnarEncoder(schema)
	dec := NewColumnarDecoder()

	all := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	body := encodeRows(t, enc, []StreamRow{{TimeNanos: 1e9, Values: all}})
	if err := dec.Decode(body); err != nil {
		t.Fatalf("decode: %v", err)
	}

	// Second tick: net group absent, proc values move. The absent group's
	// delta state must be untouched on both sides.
	next := []float64{1, 2, 30, 4, 999, 999, 7.5, 8, 9.5}
	present := []bool{true, false, true}
	body = encodeRows(t, enc, []StreamRow{{TimeNanos: 2e9, Present: present, Values: next}})
	if err := dec.Decode(body); err != nil {
		t.Fatalf("decode toggle: %v", err)
	}
	row := dec.Rows()[0]
	if row.Present[1] {
		t.Fatal("net group should be absent")
	}
	if row.Values[4] != 5 || row.Values[5] != 6 {
		t.Fatalf("absent group state disturbed: %v", row.Values[4:6])
	}
	if row.Values[2] != 30 || row.Values[6] != 7.5 {
		t.Fatalf("present group values wrong: %v", row.Values)
	}

	// Third tick: net group back, with changed values delta'd against the
	// values from tick one.
	third := []float64{1, 2, 30, 4, 5.25, 6, 7.5, 8, 9.5}
	body = encodeRows(t, enc, []StreamRow{{TimeNanos: 3e9, Values: third}})
	if err := dec.Decode(body); err != nil {
		t.Fatalf("decode return: %v", err)
	}
	row = dec.Rows()[0]
	if !row.Present[1] || row.Values[4] != 5.25 || row.Values[5] != 6 {
		t.Fatalf("returning group wrong: %v", row.Values[4:6])
	}
}

func TestColumnarSpecialFloatsRoundTripBitExact(t *testing.T) {
	schema := StreamSchema{Method: "m", Groups: []ColumnGroup{{Name: "g", Columns: []string{"a", "b", "c", "d", "e", "f"}}}}
	enc := NewColumnarEncoder(schema)
	dec := NewColumnarDecoder()

	specials := [][]float64{
		{math.NaN(), math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64, math.Copysign(0, -1)},
		{0, math.NaN(), 1e-308, -math.MaxFloat64, math.Inf(1), 42},
		{math.Float64frombits(0x7ff8000000000001), 0, 0, 1, 1, 1}, // NaN payload
	}
	for tick, vals := range specials {
		body := encodeRows(t, enc, []StreamRow{{TimeNanos: int64(tick) * 1e9, Values: vals}})
		if err := dec.Decode(body); err != nil {
			t.Fatalf("tick %d: decode: %v", tick, err)
		}
		row := dec.Rows()[0]
		for i, want := range vals {
			if math.Float64bits(row.Values[i]) != math.Float64bits(want) {
				t.Fatalf("tick %d value[%d]: bits %x, want %x",
					tick, i, math.Float64bits(row.Values[i]), math.Float64bits(want))
			}
		}
	}
}

func TestColumnarSeqDiscontinuityErrors(t *testing.T) {
	schema := testSchema()
	enc := NewColumnarEncoder(schema)
	dec := NewColumnarDecoder()

	vals := make([]float64, schema.numCols())
	f1 := encodeRows(t, enc, []StreamRow{{TimeNanos: 1, Values: vals}})
	f2 := encodeRows(t, enc, []StreamRow{{TimeNanos: 2, Values: vals}})
	f3 := encodeRows(t, enc, []StreamRow{{TimeNanos: 3, Values: vals}})
	_ = f2
	if err := dec.Decode(f1); err != nil {
		t.Fatalf("decode f1: %v", err)
	}
	if err := dec.Decode(f3); err == nil {
		t.Fatal("skipping a frame must error, deltas would apply to stale state")
	}
}

func TestColumnarDataBeforeSchemaErrors(t *testing.T) {
	enc := NewColumnarEncoder(testSchema())
	enc.Begin()
	body := append([]byte(nil), enc.Finish()...) // includes schema
	// Strip the schema frame: find the data frame start by re-encoding.
	enc2 := NewColumnarEncoder(testSchema())
	enc2.sentSch = true // pretend the schema went out already
	enc2.Begin()
	data := enc2.Finish()
	dec := NewColumnarDecoder()
	if err := dec.Decode(data); err == nil {
		t.Fatal("data frame before schema must error")
	}
	dec = NewColumnarDecoder()
	if err := dec.Decode(body); err != nil {
		t.Fatalf("schema+data: %v", err)
	}
}

func TestColumnarEncoderResetResendsSchema(t *testing.T) {
	schema := testSchema()
	enc := NewColumnarEncoder(schema)
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	_ = encodeRows(t, enc, []StreamRow{{TimeNanos: 1e9, Values: vals}})
	enc.Reset()
	body := encodeRows(t, enc, []StreamRow{{TimeNanos: 2e9, Values: vals}})
	if body[0] != frameKindSchema {
		t.Fatal("post-Reset frame must lead with the schema")
	}
	dec := NewColumnarDecoder()
	if err := dec.Decode(body); err != nil {
		t.Fatalf("decode post-reset: %v", err)
	}
	if dec.Rows()[0].Values[0] != 1 {
		t.Fatalf("post-reset values wrong: %v", dec.Rows()[0].Values)
	}
}

// TestColumnarRoundTripProperty drives randomized multi-row frames with
// random presence patterns and adversarially special values through the
// codec and requires bit-exact reconstruction of every present group, plus
// correct carry-forward of absent ones.
func TestColumnarRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := []float64{0, 1, -1, 1.5, math.NaN(), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
		1e-308, 12345.6789, math.Copysign(0, -1)}
	pick := func(cur float64) float64 {
		switch rng.Intn(4) {
		case 0:
			return cur // unchanged, exercises skip runs
		case 1:
			return pool[rng.Intn(len(pool))]
		case 2:
			return cur + rng.NormFloat64() // small delta
		default:
			return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
		}
	}

	for trial := 0; trial < 20; trial++ {
		ngroups := 1 + rng.Intn(5)
		schema := StreamSchema{Method: "prop", Node: "n"}
		for g := 0; g < ngroups; g++ {
			ncols := 1 + rng.Intn(40)
			cols := make([]string, ncols)
			for c := range cols {
				cols[c] = "c"
			}
			schema.Groups = append(schema.Groups, ColumnGroup{Name: "g", Columns: cols})
		}
		ncols := schema.numCols()

		enc := NewColumnarEncoder(schema)
		dec := NewColumnarDecoder()
		// ref mirrors what the decoder should hold: last transmitted value
		// per column.
		ref := make([]float64, ncols)
		vals := make([]float64, ncols)
		now := int64(0)

		for frame := 0; frame < 30; frame++ {
			nrows := 1 + rng.Intn(3)
			type expRow struct {
				t       int64
				warmup  bool
				present []bool
				want    []float64
			}
			var exp []expRow
			enc.Begin()
			for r := 0; r < nrows; r++ {
				now += int64(rng.Intn(2_000_000_000)) - 500_000_000
				warmup := rng.Intn(10) == 0
				present := make([]bool, ngroups)
				for g := range present {
					present[g] = rng.Intn(4) != 0
				}
				for g := range present {
					off, n := 0, len(schema.Groups[g].Columns)
					for gg := 0; gg < g; gg++ {
						off += len(schema.Groups[gg].Columns)
					}
					if present[g] {
						for c := 0; c < n; c++ {
							vals[off+c] = pick(vals[off+c])
							ref[off+c] = vals[off+c]
						}
					}
				}
				if err := enc.AppendRow(now, warmup, present, vals); err != nil {
					t.Fatalf("trial %d frame %d: AppendRow: %v", trial, frame, err)
				}
				exp = append(exp, expRow{t: now, warmup: warmup,
					present: append([]bool(nil), present...),
					want:    append([]float64(nil), ref...)})
			}
			body := enc.Finish()
			if err := dec.Decode(body); err != nil {
				t.Fatalf("trial %d frame %d: decode: %v", trial, frame, err)
			}
			rows := dec.Rows()
			if len(rows) != len(exp) {
				t.Fatalf("trial %d frame %d: %d rows, want %d", trial, frame, len(rows), len(exp))
			}
			for ri, want := range exp {
				got := rows[ri]
				if got.TimeNanos != want.t || got.Warmup != want.warmup {
					t.Fatalf("trial %d frame %d row %d header: %+v vs %+v", trial, frame, ri, got, want)
				}
				for g := range want.present {
					if got.Present[g] != want.present[g] {
						t.Fatalf("trial %d frame %d row %d: presence[%d]", trial, frame, ri, g)
					}
				}
				for c := range want.want {
					if math.Float64bits(got.Values[c]) != math.Float64bits(want.want[c]) {
						t.Fatalf("trial %d frame %d row %d col %d: bits %x want %x",
							trial, frame, ri, c,
							math.Float64bits(got.Values[c]), math.Float64bits(want.want[c]))
					}
				}
			}
		}
	}
}

func TestColumnarAppendRowValidation(t *testing.T) {
	enc := NewColumnarEncoder(testSchema())
	if err := enc.AppendRow(0, false, nil, make([]float64, 9)); err == nil {
		t.Fatal("AppendRow before Begin must error")
	}
	enc.Begin()
	if err := enc.AppendRow(0, false, nil, make([]float64, 3)); err == nil {
		t.Fatal("short value vector must error")
	}
	if err := enc.AppendRow(0, false, make([]bool, 1), make([]float64, 9)); err == nil {
		t.Fatal("short presence vector must error")
	}
}
