package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/telemetry"
)

// countingStreamSource emits one row per collect with a value derived from a
// shared tick counter, so tests can check ordering and reconnect behavior.
type countingStreamSource struct {
	tick *atomic.Int64
	vals []float64
}

func (s *countingStreamSource) Schema() StreamSchema {
	return StreamSchema{
		Method: "test.stream",
		Node:   "n1",
		Groups: []ColumnGroup{{Name: "g", Columns: []string{"tick", "constant", "wave"}}},
	}
}

func (s *countingStreamSource) Collect(fw *FrameWriter) error {
	n := s.tick.Add(1)
	if s.vals == nil {
		s.vals = make([]float64, 3)
	}
	s.vals[0] = float64(n)
	s.vals[1] = 42
	s.vals[2] = float64(n % 3)
	fw.AppendRow(n*1e9, false, nil, s.vals)
	return nil
}

// newStreamTestServer starts a server whose test.stream method shares one
// tick counter across opens (so a reconnect continues the sequence).
func newStreamTestServer(t *testing.T) (*Server, string, *atomic.Int64) {
	t.Helper()
	var tick atomic.Int64
	srv := NewServer("stream-test")
	srv.Handle("ping", func(json.RawMessage) (any, error) { return "pong", nil })
	srv.HandleStream("test.stream", func(json.RawMessage) (StreamSource, error) {
		return &countingStreamSource{tick: &tick}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, addr.String(), &tick
}

func fastOpts() Options {
	return Options{
		CallTimeout:      5 * time.Second,
		ReconnectBackoff: time.Nanosecond,
		MaxBackoff:       time.Nanosecond,
		BreakerThreshold: 100,
		Rand:             func() float64 { return 0 },
	}
}

func TestStreamPull(t *testing.T) {
	_, addr, _ := newStreamTestServer(t)
	m := NewManagedClient(addr, "test", fastOpts())
	defer m.Close()

	sc, err := m.Stream("test.stream", nil)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	for want := int64(1); want <= 5; want++ {
		rows, err := sc.Pull()
		if err != nil {
			t.Fatalf("pull %d: %v", want, err)
		}
		if len(rows) != 1 || rows[0].Values[0] != float64(want) || rows[0].Values[1] != 42 {
			t.Fatalf("pull %d: rows %+v", want, rows)
		}
		if rows[0].TimeNanos != want*1e9 {
			t.Fatalf("pull %d: time %d", want, rows[0].TimeNanos)
		}
	}
	schema, ok := sc.Schema()
	if !ok || schema.Method != "test.stream" || schema.Groups[0].Columns[0] != "tick" {
		t.Fatalf("schema: %+v ok=%v", schema, ok)
	}
}

func TestStreamSteadyStateBytesShrink(t *testing.T) {
	_, addr, _ := newStreamTestServer(t)
	c, err := Dial(addr, "test")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	id, err := c.openStream("test.stream", nil, false, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	dec := NewColumnarDecoder()
	if err := c.pullStream(id, dec); err != nil {
		t.Fatalf("first pull: %v", err)
	}
	_, firstRecv := c.Stats()
	if err := c.pullStream(id, dec); err != nil {
		t.Fatalf("second pull: %v", err)
	}
	_, secondRecv := c.Stats()
	first := firstRecv // includes hello + schema frame
	steady := secondRecv - firstRecv
	// Steady-state frame: 4B header + ~15B body (seq, one delta'd tick
	// column, wave column, skips). The schema-bearing first response is far
	// larger.
	if steady >= 40 {
		t.Fatalf("steady-state pull cost %d bytes on the wire, want < 40 (first: %d)", steady, first)
	}
}

func TestStreamPullUnsupportedMethod(t *testing.T) {
	_, addr, _ := newStreamTestServer(t)
	m := NewManagedClient(addr, "test", fastOpts())
	defer m.Close()

	sc, err := m.Stream("no.such.stream", nil)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	_, err = sc.Pull()
	if err == nil || !IsStreamUnsupported(err) {
		t.Fatalf("want stream-unsupported error, got %v", err)
	}
}

func TestStreamUnsupportedOnPreColumnarServer(t *testing.T) {
	// A server with no stream handlers rejects rpc.stream.open; the client
	// must classify that as "speak JSON instead".
	srv := NewServer("old")
	srv.Handle("ping", func(json.RawMessage) (any, error) { return "pong", nil })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srv.Close()

	m := NewManagedClient(addr.String(), "test", fastOpts())
	defer m.Close()
	sc, err := m.Stream("test.stream", nil)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	_, err = sc.Pull()
	if err == nil || !IsStreamUnsupported(err) {
		t.Fatalf("want stream-unsupported error, got %v", err)
	}
	// The connection must remain usable for ordinary calls afterwards.
	var pong string
	if err := m.Call("ping", nil, &pong); err != nil || pong != "pong" {
		t.Fatalf("ping after failed open: %v %q", err, pong)
	}
}

func TestStreamPullReconnectsAfterDrop(t *testing.T) {
	srv, addr, tick := newStreamTestServer(t)
	m := NewManagedClient(addr, "test", fastOpts())
	defer m.Close()

	sc, err := m.Stream("test.stream", nil)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if _, err := sc.Pull(); err != nil {
		t.Fatalf("pull 1: %v", err)
	}
	if n := srv.DropConns(); n != 1 {
		t.Fatalf("dropped %d conns, want 1", n)
	}

	// The next pulls fail on the dead conn, then the managed client redials
	// and the stream reopens with a fresh schema frame.
	deadline := time.Now().Add(5 * time.Second)
	var rows []StreamRow
	for {
		rows, err = sc.Pull()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pull never recovered: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	// The shared tick counter proves this is a fresh server-side source on
	// the same underlying state: the value moved past the first pull's 1.
	if got := rows[0].Values[0]; got < 2 || got != float64(tick.Load()) {
		t.Fatalf("post-reconnect tick %v (counter %d)", got, tick.Load())
	}
}

func TestStreamSubscribeLockstep(t *testing.T) {
	_, addr, _ := newStreamTestServer(t)
	m := NewManagedClient(addr, "test", fastOpts())
	defer m.Close()

	sub, err := m.Subscribe("test.stream", nil, 0, 1)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	for want := int64(1); want <= 5; want++ {
		rows, err := sub.Fetch()
		if err != nil {
			t.Fatalf("fetch %d: %v", want, err)
		}
		if len(rows) != 1 || rows[0].Values[0] != float64(want) {
			t.Fatalf("fetch %d: rows %+v", want, rows)
		}
	}
}

func TestStreamSubscribeWindowedPipelining(t *testing.T) {
	_, addr, tick := newStreamTestServer(t)
	m := NewManagedClient(addr, "test", fastOpts())
	defer m.Close()

	sub, err := m.Subscribe("test.stream", nil, 0, 3)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	// Frames arrive strictly in order even though the server may collect
	// ahead of the client by up to window-1 frames.
	for want := int64(1); want <= 10; want++ {
		rows, err := sub.Fetch()
		if err != nil {
			t.Fatalf("fetch %d: %v", want, err)
		}
		if rows[0].Values[0] != float64(want) {
			t.Fatalf("fetch %d: got tick %v", want, rows[0].Values[0])
		}
	}
	// With window 3 the server ran at most 2 collects ahead.
	if n := tick.Load(); n > 12 {
		t.Fatalf("server ran %d collects for 10 fetches, window 3", n)
	}
}

func TestStreamSubscribeReconnects(t *testing.T) {
	srv, addr, tick := newStreamTestServer(t)
	m := NewManagedClient(addr, "test", fastOpts())
	defer m.Close()

	sub, err := m.Subscribe("test.stream", nil, 0, 2)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if _, err := sub.Fetch(); err != nil {
		t.Fatalf("fetch 1: %v", err)
	}
	srv.DropConns()

	deadline := time.Now().Add(5 * time.Second)
	var rows []StreamRow
	for {
		rows, err = sub.Fetch()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fetch never recovered: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	// With window 2 the server may legitimately run one collect ahead of
	// the frame we just read; the received tick only has to have advanced
	// past the pre-drop frame and not beyond the shared counter.
	if got := rows[0].Values[0]; got < 2 || got > float64(tick.Load()) {
		t.Fatalf("post-reconnect tick %v (counter %d)", got, tick.Load())
	}
}

func TestStreamCollectErrorIsRemoteError(t *testing.T) {
	srv := NewServer("erry")
	srv.HandleStream("bad.stream", func(json.RawMessage) (StreamSource, error) {
		return &erroringSource{}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srv.Close()

	m := NewManagedClient(addr.String(), "test", fastOpts())
	defer m.Close()
	sc, _ := m.Stream("bad.stream", nil)
	_, err = sc.Pull()
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if IsStreamUnsupported(err) {
		t.Fatal("a collect error must not read as unsupported")
	}
	// Remote errors prove the node alive: the breaker must not have moved.
	if h := m.Health(); h.State != BreakerClosed || h.TotalFailures != 0 {
		t.Fatalf("collect error counted against transport health: %+v", h)
	}
}

type erroringSource struct{}

func (e *erroringSource) Schema() StreamSchema {
	return StreamSchema{Method: "bad.stream", Groups: []ColumnGroup{{Name: "g", Columns: []string{"x"}}}}
}
func (e *erroringSource) Collect(fw *FrameWriter) error { return fmt.Errorf("sensor exploded") }

func TestWireByteTelemetryCountersTrackStats(t *testing.T) {
	_, addr, _ := newStreamTestServer(t)
	reg := telemetry.NewRegistry()
	opts := fastOpts()
	opts.Metrics = reg
	m := NewManagedClient(addr, "test", opts)
	defer m.Close()

	var pong string
	if err := m.Call("ping", nil, &pong); err != nil {
		t.Fatalf("ping: %v", err)
	}
	sc, _ := m.Stream("test.stream", nil)
	if _, err := sc.Pull(); err != nil {
		t.Fatalf("pull: %v", err)
	}

	sent, recv := m.Stats()
	if sent == 0 || recv == 0 {
		t.Fatal("no bytes counted")
	}
	al := telemetry.L("addr", addr)
	gotSent := reg.Counter("asdf_rpc_wire_bytes_sent_total", "", al).Value()
	gotRecv := reg.Counter("asdf_rpc_wire_bytes_received_total", "", al).Value()
	if gotSent != sent || gotRecv != recv {
		t.Fatalf("counters sent=%d recv=%d, Stats sent=%d recv=%d", gotSent, gotRecv, sent, recv)
	}
	h := m.Health()
	if h.BytesSent != sent || h.BytesReceived != recv {
		t.Fatalf("Health bytes %d/%d, Stats %d/%d", h.BytesSent, h.BytesReceived, sent, recv)
	}
}

func TestHandleStreamReservedAndDuplicatePanic(t *testing.T) {
	srv := NewServer("s")
	h := func(json.RawMessage) (StreamSource, error) { return &erroringSource{}, nil }
	srv.HandleStream("ok.stream", h)
	for _, name := range []string{MethodBatch, MethodStreamOpen, MethodStreamPull, MethodStreamCredit, "ok.stream"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("HandleStream(%q) did not panic", name)
				}
			}()
			srv.HandleStream(name, h)
		}()
	}
	// The reserved stream methods must be rejected by Handle too.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Handle(rpc.stream.open) did not panic")
			}
		}()
		srv.Handle(MethodStreamOpen, func(json.RawMessage) (any, error) { return nil, nil })
	}()
}
