package hadoopsim

import (
	"sort"
	"time"

	"github.com/asdf-project/asdf/internal/hadooplog"
)

const workEps = 1e-6

// tickWork is the per-tick demand snapshot for one attempt.
type tickWork struct {
	a        *attempt
	cpuWant  float64
	diskWant float64
	flows    []*flow
}

// allocateAndAdvance runs the two-pass resource round: register every
// attempt's demands on its node(s), fix the per-node grant scales, then
// advance all attempts by their grants, handling phase transitions,
// fault-induced failures, and log emission.
func (c *Cluster) allocateAndAdvance() {
	var work []tickWork
	for _, n := range c.slaves {
		for _, a := range n.mapAttempts {
			work = append(work, c.registerDemands(a))
		}
		for _, a := range n.reduceAttempts {
			work = append(work, c.registerDemands(a))
		}
	}
	for _, n := range c.slaves {
		n.computeScales()
	}
	for i := range work {
		c.advance(&work[i])
	}
}

// partitionBlocked reports whether traffic from src to dst is black-holed
// by an asymmetric partition: a partitioned node stops receiving from the
// lower half of the cluster while its own transmissions (and traffic
// between healthy peers) still flow.
func (c *Cluster) partitionBlocked(src, dst int) bool {
	if src == dst {
		return false
	}
	return c.slaves[dst].fault == FaultNetPartition && src < len(c.slaves)/2
}

// registerDemands computes what the attempt wants this tick and registers
// it on the involved nodes.
func (c *Cluster) registerDemands(a *attempt) tickWork {
	w := tickWork{a: a}
	if a.finished {
		return w
	}
	n := a.node

	if n.gcPaused {
		// Stop-the-world: the JVM is frozen — no compute, no I/O, just the
		// occasional kernel-side wakeup.
		w.cpuWant = 0.02
		n.addCPUDemand(w.cpuWant)
		return w
	}

	switch {
	case a.hang && a.hangBurnCPU:
		w.cpuWant = 1.0 // HADOOP-1036: busy loop on one core
	case a.hang:
		w.cpuWant = 0.01 // blocked, occasional wakeup
	default:
		switch a.phase {
		case phaseMapRun:
			w.cpuWant = clamp(a.cpuLeft, 0.05, mapPhaseCPU)
		case phaseCopy:
			w.cpuWant = copyPhaseCPU
		case phaseSort:
			w.cpuWant = clamp(a.cpuLeft, 0.05, sortPhaseCPU)
		case phaseReduce:
			w.cpuWant = clamp(a.cpuLeft, 0.05, reducePhaseCPU)
		}
	}
	n.addCPUDemand(w.cpuWant)

	if !a.hang {
		w.diskWant = a.diskLeft
		if w.diskWant > taskDiskCapMBps {
			w.diskWant = taskDiskCapMBps
		}
		if w.diskWant < 0 {
			w.diskWant = 0
		}
		n.addDiskDemand(w.diskWant)

		// Persistent flows (block reads, replication writes).
		for _, f := range a.flows {
			if f.left <= workEps || f.src == f.dst {
				continue
			}
			if c.partitionBlocked(f.src, f.dst) {
				// The transfer stalls in the black hole; the receiver sees
				// only its peer's futile retransmissions.
				f.want = 0
				c.slaves[f.dst].partitionDropMB += minF(f.left, taskNetCapMBps)
				continue
			}
			f.want = f.left
			if f.want > taskNetCapMBps {
				f.want = taskNetCapMBps
			}
			c.registerFlow(f)
			w.flows = append(w.flows, f)
		}

		// Shuffle flows rebuilt each tick from the available map outputs,
		// the per-attempt network cap split across source nodes. Sources
		// behind an asymmetric partition are unreachable: their output
		// stays pending and the fetch attempts count as dropped traffic.
		if a.phase == phaseCopy && len(a.copyAvail) > 0 {
			srcs := make([]int, 0, len(a.copyAvail))
			var totalAvail float64
			for s, mb := range a.copyAvail {
				if mb > workEps {
					if c.partitionBlocked(s, n.Index) {
						n.partitionDropMB += minF(mb, 5)
						continue
					}
					srcs = append(srcs, s)
					totalAvail += mb
				}
			}
			sort.Ints(srcs)
			if totalAvail > workEps {
				budget := minF(taskNetCapMBps, totalAvail)
				for _, s := range srcs {
					f := &flow{
						src: s, dst: n.Index, kind: flowShuffle,
						left: a.copyAvail[s],
						want: budget * a.copyAvail[s] / totalAvail,
					}
					if s == n.Index {
						// Local map output: disk copy, no network.
						f.diskAtSrc = true
						c.slaves[s].addDiskDemand(f.want)
					} else {
						f.diskAtSrc = true
						c.registerFlow(f)
					}
					w.flows = append(w.flows, f)
				}
			}
		}
	}
	return w
}

func (c *Cluster) registerFlow(f *flow) {
	src, dst := c.slaves[f.src], c.slaves[f.dst]
	src.txDemand += f.want
	dst.rxDemand += f.want
	if f.diskAtSrc {
		src.addDiskDemand(f.want)
	}
	if f.diskAtDst {
		dst.addDiskDemand(f.want)
	}
}

// grantFor computes a flow's granted MB this tick from the involved nodes'
// scales.
func (c *Cluster) grantFor(f *flow) float64 {
	src, dst := c.slaves[f.src], c.slaves[f.dst]
	scale := 1.0
	if f.src != f.dst {
		scale = minF(src.txScale, dst.rxScale)
	}
	if f.diskAtSrc {
		scale = minF(scale, src.diskScale)
	}
	if f.diskAtDst {
		scale = minF(scale, dst.diskScale)
	}
	return f.want * scale
}

// advance applies this tick's grants to the attempt and processes phase
// transitions, completion, and fault behaviour.
func (c *Cluster) advance(w *tickWork) {
	a := w.a
	if a == nil || a.finished {
		return
	}
	n := a.node
	progressed := false

	// pf scales effective progress: zero during a stop-the-world pause,
	// fractional on a straggling node — demand was registered at full size,
	// but the work completed per granted unit shrinks.
	pf := n.progressFactor()
	if !a.hang && pf > 0 {
		if g := w.cpuWant * n.cpuGrant * pf; g > 0 && a.cpuLeft > 0 && a.phase != phaseCopy {
			a.cpuLeft -= g
			progressed = true
		}
		if g := w.diskWant * n.diskScale * pf; g > 0 && a.diskLeft > 0 {
			a.diskLeft -= g
			progressed = true
		}
		for _, f := range w.flows {
			g := c.grantFor(f) * pf
			if g <= 0 {
				continue
			}
			switch f.kind {
			case flowShuffle:
				if g > a.copyAvail[f.src] {
					g = a.copyAvail[f.src]
				}
				a.copyAvail[f.src] -= g
				a.copyFetched += g
			default:
				f.left -= g
			}
			if g > 0 {
				progressed = true
			}
		}
	}
	if progressed {
		a.lastProgress = c.now
	}

	// HADOOP-1152: the attempt dies once it has copied half its input.
	if a.failMidCopy && a.phase == phaseCopy && a.copyExpected > 0 &&
		a.copyFetched >= 0.5*a.copyExpected {
		c.jt.failedAttempts = append(c.jt.failedAttempts, &failedAttempt{
			a: a, reason: "java.io.IOException: failed to rename map output",
		})
		return
	}

	switch a.phase {
	case phaseMapRun:
		if a.cpuLeft <= workEps && a.diskLeft <= workEps && flowsDone(a.flows) {
			// The block read is complete: the serving datanode logs it.
			for _, f := range a.flows {
				if f.kind == flowBlockRead {
					_ = c.slaves[f.src].dnLog.ServedBlock(c.now,
						hadooplog.BlockID(f.blockID), addrHost(n.Addr))
				}
			}
			c.jt.doneAttempts = append(c.jt.doneAttempts, a)
		}
	case phaseCopy:
		j := a.task.job
		copied := a.copyExpected <= workEps || a.copyFetched >= a.copyExpected-workEps
		if copied && j.mapsDone >= len(j.maps) {
			c.enterSort(a)
		} else {
			c.maybeLogReduceProgress(a)
		}
	case phaseSort:
		if !a.hang && a.cpuLeft <= workEps && a.diskLeft <= workEps {
			c.enterReduce(a)
		} else {
			c.maybeLogReduceProgress(a)
		}
	case phaseReduce:
		if a.cpuLeft <= workEps && a.diskLeft <= workEps && flowsDone(a.flows) {
			c.finishReduce(a)
		} else {
			c.maybeLogReduceProgress(a)
		}
	}
}

// enterSort transitions a reduce attempt into the sort/merge phase.
func (c *Cluster) enterSort(a *attempt) {
	j := a.task.job
	a.phase = phaseSort
	a.cpuNeed = j.reduceInputMB * j.class.sortCPUPerMB
	a.cpuLeft = a.cpuNeed
	a.diskNeed = 2 * j.reduceInputMB // merge passes
	a.diskLeft = a.diskNeed
	if a.hangAtSort {
		// HADOOP-2080: the merge hits a miscomputed checksum and hangs.
		a.hang = true
	}
	_ = a.node.ttLog.ReduceProgress(c.now, taskIDOf(a), 33.4, hadooplog.PhaseSort)
	a.lastLogAt = c.now
}

// enterReduce transitions into the final reduce phase: the user reduce
// function runs and the output is written to HDFS through a replication
// pipeline.
func (c *Cluster) enterReduce(a *attempt) {
	j := a.task.job
	a.phase = phaseReduce
	a.cpuNeed = j.reduceInputMB * j.class.reduceCPUPerMB
	a.cpuLeft = a.cpuNeed
	a.diskNeed = j.reduceOutputMB
	a.diskLeft = a.diskNeed
	a.flows = nil
	if j.reduceOutputMB > workEps {
		a.outBlock = c.nn.allocate(c, j.reduceOutputMB, a.node.Index)
		writer := addrHost(a.node.Addr)
		for _, r := range a.outBlock.replicas {
			_ = c.slaves[r].dnLog.ReceivingBlock(c.now, hadooplog.BlockID(a.outBlock.id),
				writer, addrHost(c.slaves[r].Addr))
			if r != a.node.Index {
				a.flows = append(a.flows, &flow{
					src: a.node.Index, dst: r, left: j.reduceOutputMB,
					diskAtDst: true, kind: flowReplicate, blockID: a.outBlock.id,
				})
			}
		}
	}
	_ = a.node.ttLog.ReduceProgress(c.now, taskIDOf(a), 66.7, hadooplog.PhaseReduce)
	a.lastLogAt = c.now
}

// finishReduce completes the output pipeline and marks the attempt done.
func (c *Cluster) finishReduce(a *attempt) {
	if a.outBlock != nil {
		writer := addrHost(a.node.Addr)
		size := int64(a.outBlock.sizeMB * 1e6)
		for _, r := range a.outBlock.replicas {
			_ = c.slaves[r].dnLog.ReceivedBlock(c.now, hadooplog.BlockID(a.outBlock.id), size, writer)
		}
		a.task.job.outputBlocks = append(a.task.job.outputBlocks, a.outBlock.id)
	}
	c.jt.doneAttempts = append(c.jt.doneAttempts, a)
}

// maybeLogReduceProgress emits a TaskTracker progress line every few
// seconds, which keeps the white-box sub-state (copy/sort/reduce) visible.
func (c *Cluster) maybeLogReduceProgress(a *attempt) {
	// A hung task's JVM reports nothing (HADOOP-1036/2080), and a JVM in a
	// stop-the-world pause reports nothing either, so their silence is
	// visible in the logs.
	if a.task.isMap || a.hang || a.node.gcPaused || c.now.Sub(a.lastLogAt) < 5*time.Second {
		return
	}
	var pct float64
	var ph hadooplog.ReducePhase
	switch a.phase {
	case phaseCopy:
		ph = hadooplog.PhaseCopy
		if a.copyExpected > 0 {
			pct = 33.3 * a.copyFetched / a.copyExpected
		}
	case phaseSort:
		ph = hadooplog.PhaseSort
		pct = 33.4
		if a.cpuNeed > 0 {
			pct += 33.3 * (1 - a.cpuLeft/a.cpuNeed)
		}
	case phaseReduce:
		ph = hadooplog.PhaseReduce
		pct = 66.7
		if a.cpuNeed > 0 {
			pct += 33.3 * (1 - a.cpuLeft/a.cpuNeed)
		}
	default:
		return
	}
	_ = a.node.ttLog.ReduceProgress(c.now, taskIDOf(a), pct, ph)
	a.lastLogAt = c.now
}

func flowsDone(flows []*flow) bool {
	for _, f := range flows {
		if f.left > workEps {
			return false
		}
	}
	return true
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// addrHost strips the port from a node address for log messages.
func addrHost(addr string) string {
	for i := 0; i < len(addr); i++ {
		if addr[i] == ':' {
			return addr[:i]
		}
	}
	return addr
}
