package hadoopsim

import (
	"testing"
	"time"
)

func TestHeartbeatsHealthyNode(t *testing.T) {
	c := testCluster(t, 4, 31)
	c.RunFor(time.Minute)
	for i, n := range c.Slaves() {
		if !n.hbOK {
			t.Errorf("healthy slave %d missed its heartbeat", i)
		}
		if !n.lastHeartbeatOK.Equal(c.Now()) {
			t.Errorf("healthy slave %d lastHeartbeatOK = %v, want %v", i, n.lastHeartbeatOK, c.Now())
		}
	}
}

func TestPacketLossStarvesScheduling(t *testing.T) {
	c := testCluster(t, 6, 32)
	c.RunFor(2 * time.Minute)
	if err := c.InjectFault(2, FaultPacketLoss); err != nil {
		t.Fatal(err)
	}
	// Count task launches per node over the faulty period.
	launchesBefore := make([]uint64, 6)
	for i, n := range c.Slaves() {
		launchesBefore[i] = countLaunches(n)
	}
	c.RunFor(5 * time.Minute)
	lossy := countLaunches(c.Slave(2)) - launchesBefore[2]
	var peers uint64
	for i, n := range c.Slaves() {
		if i == 2 {
			continue
		}
		peers += countLaunches(n) - launchesBefore[i]
	}
	peerAvg := peers / 5
	if lossy >= peerAvg {
		t.Errorf("lossy node launched %d tasks, peer average %d; heartbeat loss should starve it", lossy, peerAvg)
	}
}

func countLaunches(n *Node) uint64 {
	lines, _ := n.TaskTrackerLog().ReadFrom(0)
	var c uint64
	for _, l := range lines {
		if contains(l, "LaunchTaskAction") {
			c++
		}
	}
	return c
}

func TestJTViewStaleness(t *testing.T) {
	// A task progressing locally on a node whose heartbeats are lost looks
	// stalled to the jobtracker: its twin gets speculated and the original
	// is killed once the twin wins. Verify the staleness computation
	// directly: with the heartbeat clock frozen in a backoff, the JT's
	// view of an attempt's progress is the heartbeat time, not the local
	// progress time.
	c := testCluster(t, 4, 33)
	c.RunFor(time.Minute)
	n := c.Slave(0)
	n.packetLoss = 0.5
	n.hbBackoffUntil = c.Now().Add(10 * time.Minute) // force a long outage
	stale := c.Now()
	n.lastHeartbeatOK = stale
	before := c.TasksCompleted()
	c.RunFor(3 * time.Minute)
	if !n.lastHeartbeatOK.Equal(stale) {
		t.Fatalf("heartbeat got through despite forced backoff")
	}
	if c.TasksCompleted() <= before {
		t.Error("cluster should keep completing tasks via the healthy nodes")
	}
}

func TestHeartbeatBackoffIsBursty(t *testing.T) {
	c := testCluster(t, 3, 34)
	if err := c.InjectFault(0, FaultPacketLoss); err != nil {
		t.Fatal(err)
	}
	n := c.Slave(0)
	okRuns, lostRuns := 0, 0
	prev := false
	first := true
	longestGap := 0
	gap := 0
	for i := 0; i < 600; i++ {
		c.Tick()
		if n.hbOK {
			if first || !prev {
				okRuns++
			}
			if gap > longestGap {
				longestGap = gap
			}
			gap = 0
		} else {
			if first || prev {
				lostRuns++
			}
			gap++
		}
		prev = n.hbOK
		first = false
	}
	if gap > longestGap {
		longestGap = gap
	}
	if okRuns == 0 {
		t.Error("some heartbeats should still get through at 50% loss")
	}
	// TCP backoff produces long outage bursts, not uniform coin flips.
	if longestGap < 30 {
		t.Errorf("longest heartbeat gap = %ds, expected bursty outages >= 30s", longestGap)
	}
}

func TestFaultActive(t *testing.T) {
	c := testCluster(t, 3, 35)
	n := c.Slave(0)
	if n.FaultActive() {
		t.Error("healthy node reports active fault")
	}
	if err := c.InjectFault(0, FaultCPUHog); err != nil {
		t.Fatal(err)
	}
	if !n.FaultActive() {
		t.Error("CPUHog should be active immediately")
	}
	if err := c.InjectFault(0, FaultDiskHog); err != nil {
		t.Fatal(err)
	}
	if !n.FaultActive() {
		t.Error("DiskHog should be active while data remains")
	}
	c.RunFor(500 * time.Second)
	if n.FaultActive() {
		t.Error("DiskHog should deactivate after writing its 20 GB")
	}
	if n.Fault() != FaultDiskHog {
		t.Error("fault kind should remain recorded after the hog drains")
	}
}
