package hadoopsim

import (
	"time"

	"github.com/asdf-project/asdf/internal/hadooplog"
)

// Per-task resource caps: one task attempt cannot saturate a whole node by
// itself (it is one JVM with one main thread plus I/O threads).
const (
	taskDiskCapMBps = 30
	taskNetCapMBps  = 25
	mapPhaseCPU     = 0.7 // a map JVM interleaves I/O and compute
	copyPhaseCPU    = 0.15
	sortPhaseCPU    = 0.6
	reducePhaseCPU  = 0.8
	reduceSlowstart = 0.05 // fraction of maps done before reduces launch
)

// phaseID tracks an attempt's position in its lifecycle.
type phaseID int

const (
	phaseMapRun phaseID = iota + 1
	phaseCopy
	phaseSort
	phaseReduce
)

// task is one logical map or reduce task of a job; it may have several
// attempts (retries, speculative duplicates).
type task struct {
	job      *job
	index    int
	isMap    bool
	block    *blockInfo // map input block
	done     bool
	failures int
	attempts int // attempt ids issued
	running  []*attempt
}

// attempt is one execution of a task on a node.
type attempt struct {
	task      *task
	attemptNo int
	node      *Node

	phase        phaseID
	launchedAt   time.Time
	lastProgress time.Time

	// Remaining work per component in the current phase.
	cpuNeed, cpuLeft   float64
	diskNeed, diskLeft float64
	flows              []*flow

	// Reduce shuffle accounting.
	copyExpected float64
	copyFetched  float64
	copyAvail    map[int]float64 // per-source-node MB available to fetch

	// Reduce output block (allocated at reduce-phase start).
	outBlock *blockInfo

	// Fault-driven behaviour.
	hang        bool // no progress ever
	hangBurnCPU bool // the hang is a busy loop (HADOOP-1036)
	failMidCopy bool // dies at 50% of copy (HADOOP-1152)
	hangAtSort  bool // hangs when entering sort (HADOOP-2080)

	finished  bool
	loggedPct float64
	lastLogAt time.Time
}

// flow is one network transfer: shuffle fetch, remote block read, or
// replication write.
type flow struct {
	src, dst  int
	left      float64
	want      float64 // request this tick
	diskAtSrc bool    // transfer reads from the source's disk
	diskAtDst bool    // transfer writes to the destination's disk
	// onDone logging context.
	kind    flowKind
	blockID uint64
}

type flowKind int

const (
	flowShuffle flowKind = iota + 1
	flowBlockRead
	flowReplicate
)

// job is one GridMix job.
type job struct {
	id       int
	class    *jobClass
	maps     []*task
	reduces  []*task
	mapsDone int
	redsDone int

	inputMBPerMap    float64
	mapOutputMB      float64 // per map
	totalMapOutputMB float64
	reduceInputMB    float64 // per reduce
	reduceOutputMB   float64 // per reduce

	mapOutputPerNode map[int]float64 // completed map output MB by node
	outputBlocks     []uint64
	submitted        time.Time
}

func (j *job) complete() bool {
	return j.mapsDone >= len(j.maps) && j.redsDone >= len(j.reduces)
}

// jobTracker schedules tasks onto slaves and tracks job lifecycles.
type jobTracker struct {
	c    *Cluster
	jobs []*job

	// blacklisted slaves receive no new tasks (the mitigation hook the
	// ASDF action module drives).
	blacklisted map[int]bool

	nextJobID      int
	jobsCompleted  int
	tasksCompleted int

	// Completions and failures recorded while advancing a tick, processed
	// by reap.
	doneAttempts   []*attempt
	failedAttempts []*failedAttempt

	pendingDeletes []pendingDelete
}

type failedAttempt struct {
	a      *attempt
	reason string
}

type pendingDelete struct {
	at      time.Time
	blockID uint64
}

func newJobTracker(c *Cluster) *jobTracker {
	return &jobTracker{c: c, nextJobID: 1, blacklisted: make(map[int]bool)}
}

// submit registers a new job: its input blocks are placed in HDFS (the
// dataset pre-exists; GridMix generates it before the measured runs).
func (jt *jobTracker) submit(class *jobClass, nMaps, nReduces int) *job {
	j := &job{
		id:               jt.nextJobID,
		class:            class,
		inputMBPerMap:    class.inputMBPerMap,
		mapOutputPerNode: make(map[int]float64),
		submitted:        jt.c.now,
	}
	jt.nextJobID++
	j.mapOutputMB = j.inputMBPerMap * class.mapOutputRatio
	j.totalMapOutputMB = j.mapOutputMB * float64(nMaps)
	if nReduces > 0 {
		j.reduceInputMB = j.totalMapOutputMB / float64(nReduces)
		j.reduceOutputMB = j.reduceInputMB * class.outputRatio
	}
	for i := 0; i < nMaps; i++ {
		blk := jt.c.nn.allocate(jt.c, j.inputMBPerMap, -1)
		j.maps = append(j.maps, &task{job: j, index: i, isMap: true, block: blk})
	}
	for i := 0; i < nReduces; i++ {
		j.reduces = append(j.reduces, &task{job: j, index: i})
	}
	jt.jobs = append(jt.jobs, j)
	return j
}

// step runs the per-tick scheduling pass. As in Hadoop 0.18, a tasktracker
// receives at most one map and one reduce per heartbeat, which spreads
// long-lived tasks evenly across slaves — the across-node homogeneity that
// peer comparison relies on (§4.5). Reduces additionally prefer slaves not
// already running one. Afterwards, laggards are scanned for speculation and
// hung attempts for timeout.
func (jt *jobTracker) step() {
	for _, n := range jt.c.slaves {
		jt.deliverHeartbeat(n)
	}
	order := jt.c.rng.Perm(len(jt.c.slaves))
	for _, si := range order {
		n := jt.c.slaves[si]
		if !n.hbOK || jt.blacklisted[n.Index] {
			continue // heartbeat lost, or the node is blacklisted
		}
		if n.freeMapSlots() > 0 {
			if t := jt.pickMap(n); t != nil {
				jt.launch(t, n)
			}
		}
	}
	for pass := 0; pass < 2; pass++ {
		for _, si := range order {
			n := jt.c.slaves[si]
			if pass == 0 && len(n.reduceAttempts) > 0 {
				continue // first pass: only slaves with no running reduce
			}
			if !n.hbOK || jt.blacklisted[n.Index] {
				continue
			}
			if n.freeReduceSlots() > 0 {
				if t := jt.pickReduce(); t != nil {
					jt.launch(t, n)
				}
			}
		}
	}
	jt.scanLaggards()
}

// deliverHeartbeat models induced packet loss hitting the tasktracker's
// control traffic (HADOOP-2956). A heartbeat is an RPC spanning several
// packet exchanges; at 50% packet loss most fail outright
// (1-(1-loss)^3 ≈ 88%), and each failure leaves the TT's connection in TCP
// retransmission backoff for tens of seconds. The consequences are exactly
// Hadoop's: the lossy node misses scheduling rounds, its progress reports
// go stale at the jobtracker (triggering speculation and "failed to report
// status" kills), and it accumulates work far more slowly than its peers.
func (jt *jobTracker) deliverHeartbeat(n *Node) {
	now := jt.c.now
	if n.lastHeartbeatOK.IsZero() {
		n.lastHeartbeatOK = now
	}
	switch {
	case n.gcPaused:
		// Stop-the-world: the TT's heartbeat thread is frozen along with
		// everything else in the JVM, so the beat is simply missed.
		n.hbOK = false
		return
	case n.fault == FaultStraggler && n.stragglerMul > 1:
		// Long JVM and scheduler stalls delay heartbeats past the
		// master's tolerance with probability growing as the node slows —
		// the inter-heartbeat tail widens even though the node is alive.
		if jt.c.rng.Float64() < stragglerHBMissMax*(1-1/n.stragglerMul) {
			n.hbOK = false
			return
		}
	}
	if n.packetLoss <= 0 {
		n.hbOK = true
		n.lastHeartbeatOK = now
		return
	}
	if now.Before(n.hbBackoffUntil) {
		n.hbOK = false
		return
	}
	ok := 1 - n.packetLoss
	if jt.c.rng.Float64() > ok*ok*ok {
		// Heartbeat RPC failed; connection backs off.
		backoff := 10 + jt.c.rng.Float64()*110
		n.hbBackoffUntil = now.Add(time.Duration(backoff * float64(time.Second)))
		n.hbOK = false
		return
	}
	n.hbOK = true
	n.lastHeartbeatOK = now
}

// pickMap chooses a pending map for node n, preferring data-local tasks.
func (jt *jobTracker) pickMap(n *Node) *task {
	var fallback *task
	for _, j := range jt.jobs {
		for _, t := range j.maps {
			if t.done || len(t.running) > 0 || t.failures >= jt.c.cfg.MaxTaskFailures {
				continue
			}
			if t.block.hasReplica(n.Index) {
				return t
			}
			if fallback == nil {
				fallback = t
			}
		}
	}
	return fallback
}

// pickReduce chooses a pending reduce whose job has passed slowstart.
func (jt *jobTracker) pickReduce() *task {
	for _, j := range jt.jobs {
		if len(j.maps) > 0 && float64(j.mapsDone) < reduceSlowstart*float64(len(j.maps)) {
			continue
		}
		for _, t := range j.reduces {
			if t.done || len(t.running) > 0 || t.failures >= jt.c.cfg.MaxTaskFailures {
				continue
			}
			return t
		}
	}
	return nil
}

// launch starts an attempt of t on n, applying any node fault behaviour,
// and logs the LaunchTaskAction.
func (jt *jobTracker) launch(t *task, n *Node) *attempt {
	a := &attempt{
		task:         t,
		attemptNo:    t.attempts,
		node:         n,
		launchedAt:   jt.c.now,
		lastProgress: jt.c.now,
		lastLogAt:    jt.c.now,
	}
	t.attempts++
	t.running = append(t.running, a)

	jitter := 0.9 + 0.2*jt.c.rng.Float64()
	if t.isMap {
		a.phase = phaseMapRun
		j := t.job
		a.cpuNeed = j.inputMBPerMap * j.class.mapCPUPerMB * jitter
		a.cpuLeft = a.cpuNeed
		a.diskNeed = j.mapOutputMB // write map output locally
		a.diskLeft = a.diskNeed
		if t.block.hasReplica(n.Index) {
			// Local read.
			a.diskNeed += j.inputMBPerMap
			a.diskLeft += j.inputMBPerMap
			a.flows = append(a.flows, &flow{
				src: n.Index, dst: n.Index, left: 0,
				kind: flowBlockRead, blockID: t.block.id,
			})
		} else {
			src := t.block.replicas[jt.c.rng.Intn(len(t.block.replicas))]
			a.flows = append(a.flows, &flow{
				src: src, dst: n.Index, left: j.inputMBPerMap,
				diskAtSrc: true, kind: flowBlockRead, blockID: t.block.id,
			})
		}
		if n.fault == FaultHang1036 {
			a.hang = true
			a.hangBurnCPU = true
		}
		n.mapAttempts = append(n.mapAttempts, a)
	} else {
		a.phase = phaseCopy
		j := t.job
		a.copyExpected = j.reduceInputMB
		a.copyAvail = make(map[int]float64, len(j.mapOutputPerNode))
		perReduce := 1.0 / float64(len(j.reduces))
		for node, mb := range j.mapOutputPerNode {
			a.copyAvail[node] = mb * perReduce
		}
		switch n.fault {
		case FaultHang1152:
			a.failMidCopy = true
		case FaultHang2080:
			a.hangAtSort = true
		}
		n.reduceAttempts = append(n.reduceAttempts, a)
	}
	_ = n.ttLog.LaunchTask(jt.c.now, taskIDOf(a))
	return a
}

func taskIDOf(a *attempt) string {
	return hadooplog.TaskID(a.task.job.id, a.task.isMap, a.task.index, a.attemptNo)
}

// scanLaggards schedules speculative duplicates for stalled attempts and
// fails attempts that exceeded the task timeout.
func (jt *jobTracker) scanLaggards() {
	now := jt.c.now
	lag := time.Duration(jt.c.cfg.SpeculativeLagSec) * time.Second
	timeout := time.Duration(jt.c.cfg.TaskTimeoutSec) * time.Second
	for _, j := range jt.jobs {
		for _, tasks := range [][]*task{j.maps, j.reduces} {
			for _, t := range tasks {
				for _, a := range t.running {
					if a.finished {
						continue
					}
					// The jobtracker sees progress only through heartbeats:
					// a node whose heartbeats are not getting through looks
					// stalled regardless of local progress.
					lastSeen := a.lastProgress
					if a.node.lastHeartbeatOK.Before(lastSeen) {
						lastSeen = a.node.lastHeartbeatOK
					}
					stalled := now.Sub(lastSeen)
					if stalled >= timeout {
						jt.failedAttempts = append(jt.failedAttempts, &failedAttempt{
							a: a, reason: "Task attempt failed to report status; killing",
						})
						continue
					}
					if stalled >= lag && len(t.running) == 1 {
						jt.speculate(t, a.node)
					}
				}
			}
		}
	}
}

// speculate launches a duplicate attempt on some node other than avoid.
func (jt *jobTracker) speculate(t *task, avoid *Node) {
	order := jt.c.rng.Perm(len(jt.c.slaves))
	for _, si := range order {
		n := jt.c.slaves[si]
		if n == avoid || jt.blacklisted[n.Index] {
			continue
		}
		if t.isMap && n.freeMapSlots() > 0 {
			jt.launch(t, n)
			return
		}
		if !t.isMap && n.freeReduceSlots() > 0 {
			jt.launch(t, n)
			return
		}
	}
}

// reap processes the completions and failures recorded while advancing the
// tick, and performs deferred output-block deletions.
func (jt *jobTracker) reap() {
	now := jt.c.now
	for _, fa := range jt.failedAttempts {
		a := fa.a
		if a.finished {
			continue
		}
		a.finished = true
		removeAttempt(a)
		a.task.failures++
		_ = a.node.ttLog.TaskFailed(now, taskIDOf(a), fa.reason)
		if a.task.failures >= jt.c.cfg.MaxTaskFailures && !a.task.done {
			// Task abandoned: Hadoop would fail the job; GridMix restarts
			// it. We mark the task done so the workload keeps flowing.
			jt.markDone(a.task, nil)
		}
	}
	jt.failedAttempts = nil

	for _, a := range jt.doneAttempts {
		if a.task.done {
			// A twin already finished; treat as killed duplicate.
			if !a.finished {
				a.finished = true
				removeAttempt(a)
				_ = a.node.ttLog.TaskFailed(now, taskIDOf(a), "KillTaskAction: duplicate attempt")
			}
			continue
		}
		a.finished = true
		removeAttempt(a)
		_ = a.node.ttLog.TaskDone(now, taskIDOf(a))
		jt.tasksCompleted++
		jt.markDone(a.task, a)
	}
	jt.doneAttempts = nil

	// Finished jobs leave the running list; their output blocks are
	// deleted a minute later (GridMix cleanup), producing DeleteBlock
	// events.
	kept := jt.jobs[:0]
	for _, j := range jt.jobs {
		if j.complete() {
			jt.jobsCompleted++
			for _, b := range j.outputBlocks {
				jt.pendingDeletes = append(jt.pendingDeletes, pendingDelete{
					at: now.Add(60 * time.Second), blockID: b,
				})
			}
			continue
		}
		kept = append(kept, j)
	}
	jt.jobs = kept

	remaining := jt.pendingDeletes[:0]
	for _, pd := range jt.pendingDeletes {
		if pd.at.After(now) {
			remaining = append(remaining, pd)
			continue
		}
		if b := jt.c.nn.delete(pd.blockID); b != nil {
			for _, r := range b.replicas {
				_ = jt.c.slaves[r].dnLog.DeletedBlock(now, hadooplog.BlockID(b.id))
			}
		}
	}
	jt.pendingDeletes = remaining
}

// markDone finalizes a task: kills twin attempts and updates job progress.
// winner may be nil (task abandoned after repeated failures).
func (jt *jobTracker) markDone(t *task, winner *attempt) {
	t.done = true
	for _, other := range t.running {
		if other == winner || other.finished {
			continue
		}
		other.finished = true
		removeAttempt(other)
		_ = other.node.ttLog.TaskFailed(jt.c.now, taskIDOf(other), "KillTaskAction: duplicate attempt")
	}
	t.running = nil
	j := t.job
	if t.isMap {
		j.mapsDone++
		if winner != nil {
			// The map's output becomes fetchable by reducers.
			j.mapOutputPerNode[winner.node.Index] += j.mapOutputMB
			share := j.mapOutputMB / float64(max(1, len(j.reduces)))
			for _, rt := range j.reduces {
				for _, ra := range rt.running {
					if ra.phase == phaseCopy && !ra.finished {
						ra.copyAvail[winner.node.Index] += share
					}
				}
			}
		}
	} else {
		j.redsDone++
	}
}

// removeAttempt detaches an attempt from its node's slot lists and its
// task's running list.
func removeAttempt(a *attempt) {
	n := a.node
	if a.task.isMap {
		n.mapAttempts = deleteAttempt(n.mapAttempts, a)
	} else {
		n.reduceAttempts = deleteAttempt(n.reduceAttempts, a)
	}
	a.task.running = deleteAttempt(a.task.running, a)
}

func deleteAttempt(s []*attempt, a *attempt) []*attempt {
	for i, x := range s {
		if x == a {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
