package hadoopsim

import (
	"testing"
	"time"
)

// TestExtendedFaultNames covers the production-fault library surface:
// String() names and the AllFaults ordering contract (Table 2's six first,
// then the extensions in declaration order) that the detection-quality
// harness and its CI floor file key on.
func TestExtendedFaultNames(t *testing.T) {
	cases := []struct {
		kind FaultKind
		name string
	}{
		{FaultMemLeak, "MemLeak"},
		{FaultNetPartition, "NetPartition"},
		{FaultNoisyNeighbor, "NoisyNeighbor"},
		{FaultDiskDegrade, "DiskDegrade"},
		{FaultGCPause, "GCPause"},
		{FaultStraggler, "Straggler"},
	}
	for _, tc := range cases {
		if got := tc.kind.String(); got != tc.name {
			t.Errorf("%d.String() = %q, want %q", tc.kind, got, tc.name)
		}
	}
}

func TestAllFaultsOrdering(t *testing.T) {
	want := []FaultKind{
		FaultCPUHog, FaultDiskHog, FaultPacketLoss,
		FaultHang1036, FaultHang1152, FaultHang2080,
		FaultMemLeak, FaultNetPartition, FaultNoisyNeighbor,
		FaultDiskDegrade, FaultGCPause, FaultStraggler,
	}
	if len(AllFaults) != len(want) {
		t.Fatalf("AllFaults has %d entries, want %d", len(AllFaults), len(want))
	}
	for i, k := range want {
		if AllFaults[i] != k {
			t.Errorf("AllFaults[%d] = %s, want %s", i, AllFaults[i], k)
		}
	}
	for i, k := range TableTwoFaults {
		if AllFaults[i] != k {
			t.Errorf("TableTwoFaults[%d] = %s diverges from AllFaults", i, k)
		}
	}
	seen := make(map[FaultKind]bool)
	for _, k := range AllFaults {
		if k == FaultNone {
			t.Error("FaultNone listed as injectable")
		}
		if seen[k] {
			t.Errorf("duplicate fault %s in AllFaults", k)
		}
		seen[k] = true
	}
}

func TestExtendedFaultsStayActive(t *testing.T) {
	c := testCluster(t, 4, 71)
	for _, k := range AllFaults[6:] {
		if err := c.InjectFault(1, k); err != nil {
			t.Fatalf("inject %s: %v", k, err)
		}
		c.RunFor(30 * time.Second)
		if !c.Slave(1).FaultActive() {
			t.Errorf("%s should stay active until cleared", k)
		}
	}
	if err := c.InjectFault(1, FaultNone); err != nil {
		t.Fatal(err)
	}
	if c.Slave(1).FaultActive() {
		t.Error("fault still active after clearing")
	}
}

// TestExtendedFaultSignalPerturbations asserts, per fault, that the injected
// perturbation is visible in the simulated sadc metrics of the culprit
// relative to its peers — the contrast the black-box peer comparison
// detects.
func TestExtendedFaultSignalPerturbations(t *testing.T) {
	cases := []struct {
		fault  FaultKind
		metric string
		// margin is the required separation, in the metric's units, between
		// the faulty node's mean and the peer mean over the window.
		margin float64
		// settle runs the fault before measuring starts (ramps, leaks).
		settleSec int
	}{
		// 4 MB/s leak on 7.5 GB: ~13% of total in 4 min of settle+measure.
		{FaultMemLeak, "mem_used_pct", 5, 120},
		// Half the peers retransmitting into the black hole.
		{FaultNetPartition, "net_rx_errs_per_sec", 20, 60},
		// 50% of the cores stolen for 18 s out of every 30.
		{FaultNoisyNeighbor, "cpu_busy_pct", 10, 0},
		// The same task demand against a quarter of the disk bandwidth.
		{FaultDiskDegrade, "disk_util_pct", 15, 60},
		// GC threads spinning through each stop-the-world pause.
		{FaultGCPause, "cpu_busy_pct", 5, 0},
	}
	for i, tc := range cases {
		tc := tc
		node := i % 4 // spread culprits so no node index is special-cased
		t.Run(tc.fault.String(), func(t *testing.T) {
			c := testCluster(t, 6, 72+int64(i))
			c.RunFor(2 * time.Minute)
			if err := c.InjectFault(node, tc.fault); err != nil {
				t.Fatal(err)
			}
			c.RunFor(time.Duration(tc.settleSec) * time.Second)
			means := collectNodeMeans(t, c, 120, tc.metric)
			peers := othersMean(means, node)
			if means[node] < peers+tc.margin {
				t.Errorf("%s node %s = %.2f, peers = %.2f; want separation >= %.0f",
					tc.fault, tc.metric, means[node], peers, tc.margin)
			}
		})
	}
}

// TestStragglerWidensHeartbeatTail asserts the straggler cascade's defining
// signal: the faulty node's inter-heartbeat gaps grow a long tail while
// healthy peers beat every second.
func TestStragglerWidensHeartbeatTail(t *testing.T) {
	c := testCluster(t, 6, 80)
	c.RunFor(2 * time.Minute)
	if err := c.InjectFault(2, FaultStraggler); err != nil {
		t.Fatal(err)
	}
	// Let the slowdown ramp to its plateau, then observe.
	c.RunFor(3 * time.Minute)
	gaps := make([]int, 6)    // longest missed-heartbeat run per node
	current := make([]int, 6) // running miss count
	for i := 0; i < 240; i++ {
		c.Tick()
		for nIdx, n := range c.Slaves() {
			if n.hbOK {
				current[nIdx] = 0
				continue
			}
			current[nIdx]++
			if current[nIdx] > gaps[nIdx] {
				gaps[nIdx] = current[nIdx]
			}
		}
	}
	for nIdx, g := range gaps {
		if nIdx == 2 {
			continue
		}
		if g != 0 {
			t.Errorf("healthy node %d missed heartbeats (longest gap %d s)", nIdx, g)
		}
	}
	if gaps[2] < 2 {
		t.Errorf("straggler's longest heartbeat gap = %d s, want a widened tail (>= 2 s)", gaps[2])
	}
}

// TestGCPauseSilencesNodePeriodically asserts the pause cycle: heartbeats
// are missed for gcPauseSec out of every gcCycleSec, in contiguous runs.
func TestGCPauseSilencesNodePeriodically(t *testing.T) {
	c := testCluster(t, 5, 81)
	c.RunFor(time.Minute)
	if err := c.InjectFault(1, FaultGCPause); err != nil {
		t.Fatal(err)
	}
	n := c.Slave(1)
	missed, longestRun, run := 0, 0, 0
	const window = 3 * 45 // three full GC cycles
	for i := 0; i < window; i++ {
		c.Tick()
		if !n.hbOK {
			missed++
			run++
			if run > longestRun {
				longestRun = run
			}
		} else {
			run = 0
		}
	}
	// Three cycles of ~10 s pauses, +-1 tick of phase alignment.
	if missed < 25 || missed > 35 {
		t.Errorf("missed %d heartbeats over three GC cycles, want ~30", missed)
	}
	if longestRun < 8 {
		t.Errorf("longest contiguous pause = %d s, want a stop-the-world run >= 8 s", longestRun)
	}
}

// TestNetPartitionIsAsymmetric asserts the partition's defining asymmetry:
// the victim stops receiving from the lower half of the cluster, but its
// heartbeats (and transmissions) still reach the master, so it keeps
// getting scheduled — unlike PacketLoss, which starves scheduling.
func TestNetPartitionIsAsymmetric(t *testing.T) {
	c := testCluster(t, 6, 82)
	c.RunFor(2 * time.Minute)
	victim := 4 // upper half, so the blocked set is entirely other nodes
	if err := c.InjectFault(victim, FaultNetPartition); err != nil {
		t.Fatal(err)
	}
	before := countLaunches(c.Slave(victim))
	missed := 0
	for i := 0; i < 5*60; i++ {
		c.Tick()
		if !c.Slave(victim).hbOK {
			missed++
		}
	}
	if missed != 0 {
		t.Errorf("partitioned node missed %d heartbeats; the master path is not partitioned", missed)
	}
	if got := countLaunches(c.Slave(victim)); got == before {
		t.Error("partitioned node stopped receiving task launches; partition should not starve scheduling")
	}
}

// TestStragglerCascadesToPeers asserts the cascade: the straggler's slow
// attempts trigger speculative duplicates on healthy peers.
func TestStragglerCascadesToPeers(t *testing.T) {
	c := testCluster(t, 6, 83)
	c.RunFor(2 * time.Minute)
	if err := c.InjectFault(0, FaultStraggler); err != nil {
		t.Fatal(err)
	}
	duplicatesBefore := countKilledDuplicates(c)
	c.RunFor(8 * time.Minute)
	if got := countKilledDuplicates(c); got <= duplicatesBefore {
		t.Error("no speculative duplicates killed; straggling should cascade work to peers")
	}
}

func countKilledDuplicates(c *Cluster) int {
	total := 0
	for _, n := range c.Slaves() {
		lines, _ := n.TaskTrackerLog().ReadFrom(0)
		for _, l := range lines {
			if contains(l, "KillTaskAction: duplicate attempt") {
				total++
			}
		}
	}
	return total
}
