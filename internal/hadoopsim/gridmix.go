package hadoopsim

import "fmt"

// jobClass describes one GridMix job type. GridMix (§4.7) mixes five job
// types, "ranging from an interactive workload that samples a large
// dataset, to a large sort of uncompressed data"; these classes model that
// spectrum with per-MB CPU costs and data ratios. Map/reduce counts scale
// with cluster size: map counts exceed the cluster's map slots so each job
// runs as a wave that loads every slave near-uniformly (the homogeneity
// peer comparison relies on, §4.5), while reduce counts stay below the
// cluster's reduce slots (so per-node reduce occupancy differs by the
// "small amount (typically 1)" the white-box threshold floor max(1, k*sigma)
// was designed to tolerate, §4.4) while keeping per-reducer inputs small —
// the scaled-down dataset means short sort/reduce phases that interleave
// finely across nodes instead of pinning minute-long regimes to whichever
// nodes hold reduces.
type jobClass struct {
	name string
	// Task counts as multiples of the slave count.
	mapsPerSlaveMin, mapsPerSlaveMax float64
	redsPerSlaveMin, redsPerSlaveMax float64
	// Data volumes and costs.
	inputMBPerMap  float64
	mapCPUPerMB    float64 // cpu-seconds per input MB in the map
	mapOutputRatio float64 // map output / map input
	sortCPUPerMB   float64 // cpu-seconds per MB in the reduce merge
	reduceCPUPerMB float64 // cpu-seconds per MB in the reduce function
	outputRatio    float64 // reduce output / reduce input
}

// gridMixClasses are the five GridMix job types.
var gridMixClasses = []jobClass{
	{
		name:            "webdataScan", // interactive sampling of a large dataset
		mapsPerSlaveMin: 1.0, mapsPerSlaveMax: 1.8,
		redsPerSlaveMin: 0.5, redsPerSlaveMax: 0.8,
		inputMBPerMap: 16, mapCPUPerMB: 0.35, mapOutputRatio: 0.08,
		sortCPUPerMB: 0.1, reduceCPUPerMB: 0.3, outputRatio: 0.5,
	},
	{
		name:            "streamSort", // pipe sort of uncompressed data
		mapsPerSlaveMin: 1.0, mapsPerSlaveMax: 1.8,
		redsPerSlaveMin: 0.8, redsPerSlaveMax: 1.2,
		inputMBPerMap: 16, mapCPUPerMB: 0.7, mapOutputRatio: 1.0,
		sortCPUPerMB: 0.25, reduceCPUPerMB: 0.5, outputRatio: 1.0,
	},
	{
		name:            "javaSort",
		mapsPerSlaveMin: 1.0, mapsPerSlaveMax: 1.8,
		redsPerSlaveMin: 0.8, redsPerSlaveMax: 1.2,
		inputMBPerMap: 16, mapCPUPerMB: 1.1, mapOutputRatio: 1.0,
		sortCPUPerMB: 0.3, reduceCPUPerMB: 0.6, outputRatio: 1.0,
	},
	{
		name:            "combiner", // aggregation with combiners
		mapsPerSlaveMin: 0.8, mapsPerSlaveMax: 1.4,
		redsPerSlaveMin: 0.5, redsPerSlaveMax: 0.8,
		inputMBPerMap: 16, mapCPUPerMB: 0.9, mapOutputRatio: 0.25,
		sortCPUPerMB: 0.2, reduceCPUPerMB: 0.5, outputRatio: 0.7,
	},
	{
		name:            "monsterQuery", // multi-stage heavy query
		mapsPerSlaveMin: 1.2, mapsPerSlaveMax: 2.2,
		redsPerSlaveMin: 0.8, redsPerSlaveMax: 1.2,
		inputMBPerMap: 16, mapCPUPerMB: 1.8, mapOutputRatio: 0.5,
		sortCPUPerMB: 0.3, reduceCPUPerMB: 0.9, outputRatio: 0.3,
	},
}

// gridMix submits jobs to keep the configured number running, drawing job
// types uniformly and sizes uniformly within each class, which also gives
// the workload *changes* the analyses must tolerate (§2.1).
type gridMix struct {
	c *Cluster
	// allowed restricts the classes drawn from (nil = all five).
	allowed []int
	// JobsSubmitted counts submissions, exposed for tests.
	jobsSubmitted int
}

func newGridMix(c *Cluster) *gridMix {
	return &gridMix{c: c}
}

func (g *gridMix) step() {
	for len(g.c.jt.jobs) < g.c.cfg.TargetJobs {
		var class *jobClass
		if len(g.allowed) > 0 {
			class = &gridMixClasses[g.allowed[g.c.rng.Intn(len(g.allowed))]]
		} else {
			class = &gridMixClasses[g.c.rng.Intn(len(gridMixClasses))]
		}
		slaves := float64(g.c.cfg.Slaves)
		nMaps := scaledCount(g.c, class.mapsPerSlaveMin, class.mapsPerSlaveMax, slaves)
		nReds := scaledCount(g.c, class.redsPerSlaveMin, class.redsPerSlaveMax, slaves)
		g.c.jt.submit(class, nMaps, nReds)
		g.jobsSubmitted++
	}
}

// GridMixClassNames lists the five job-type names, in definition order.
func GridMixClassNames() []string {
	out := make([]string, len(gridMixClasses))
	for i, c := range gridMixClasses {
		out[i] = c.name
	}
	return out
}

// SetWorkload restricts which GridMix job types future submissions draw
// from; an empty call restores the full five-type mix. Running jobs are
// unaffected, so the cluster transitions gradually — a realistic runtime
// workload change (§2.1: detection must tolerate "workload changes at
// runtime").
func (c *Cluster) SetWorkload(classNames ...string) error {
	if len(classNames) == 0 {
		c.gridmix.allowed = nil
		return nil
	}
	var allowed []int
	for _, want := range classNames {
		found := -1
		for i, class := range gridMixClasses {
			if class.name == want {
				found = i
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("hadoopsim: unknown GridMix class %q (have %v)", want, GridMixClassNames())
		}
		allowed = append(allowed, found)
	}
	c.gridmix.allowed = allowed
	return nil
}

func scaledCount(c *Cluster, lo, hi, slaves float64) int {
	f := lo + c.rng.Float64()*(hi-lo)
	n := int(f * slaves)
	if n < 1 {
		n = 1
	}
	return n
}
