// Package hadoopsim is a discrete-time simulator of a Hadoop 0.18-style
// MapReduce cluster: a jobtracker/namenode master and N tasktracker/datanode
// slaves running a GridMix-like workload over simulated HDFS.
//
// It is the substrate for reproducing the paper's evaluation (§4.7, 50-node
// EC2 clusters running GridMix). ASDF itself never inspects simulator
// internals: each simulated slave exposes exactly the two surfaces a real
// deployment exposes — a /proc-style performance-counter snapshot
// (procfs.Provider) and natively generated TaskTracker/DataNode logs
// (hadooplog.Buffer) — and the monitoring and analysis pipeline consumes
// only those. Fault injection (§4.2, Table 2) perturbs the simulated
// resources and task behaviour the same way the documented real-world
// problems do.
//
// The simulation advances in one-second ticks of virtual time. Per tick:
// GridMix submits jobs; the jobtracker assigns tasks to free slots
// (heartbeat scheduling, data-locality preferred, speculative re-execution
// of laggards); tasks place demands on node CPU, disk, and network; demands
// are allocated (proportionally when oversubscribed, network by source-tx /
// destination-rx scaling); tasks advance and emit log events; node counters
// accumulate into /proc-style snapshots.
package hadoopsim

import (
	"fmt"
	"math/rand"
	"time"
)

// Config parameterizes a simulated cluster.
type Config struct {
	// Slaves is the number of slave (tasktracker+datanode) nodes.
	Slaves int
	// MapSlots and ReduceSlots are per-node task slots (Hadoop defaults: 2+2).
	MapSlots    int
	ReduceSlots int
	// Cores is the CPU capacity per node, in cores.
	Cores float64
	// DiskMBps is per-node disk bandwidth.
	DiskMBps float64
	// NetMBps is per-node network bandwidth, each direction.
	NetMBps float64
	// MemTotalKB is per-node RAM (the paper's EC2 Large: 7.5 GB).
	MemTotalKB uint64
	// BlockSizeMB is the HDFS block size (scaled down from 64 MB so the
	// scaled-down GridMix dataset still spans many blocks).
	BlockSizeMB float64
	// Replication is the HDFS replication factor.
	Replication int
	// TargetJobs is the number of concurrently running jobs GridMix
	// maintains.
	TargetJobs int
	// Seed makes runs reproducible.
	Seed int64
	// Start is the virtual start time.
	Start time.Time
	// SpeculativeLagSec is how long an attempt may go without progress
	// before the jobtracker schedules a speculative duplicate.
	SpeculativeLagSec int
	// TaskTimeoutSec is Hadoop's mapred.task.timeout: an attempt with no
	// progress for this long is declared failed.
	TaskTimeoutSec int
	// MaxTaskFailures is the per-task attempt budget before the job gives
	// the task up (Hadoop default 4); the job then fails the task
	// permanently (we keep the job running, matching GridMix's tolerance).
	MaxTaskFailures int
}

// DefaultConfig mirrors the paper's environment, scaled for simulation: EC2
// Large nodes (two dual-core CPUs, 7.5 GB RAM), Hadoop 0.18 defaults for
// slots and replication, and a GridMix dataset scaled down (§4.7).
func DefaultConfig(slaves int, seed int64) Config {
	return Config{
		Slaves:            slaves,
		MapSlots:          2,
		ReduceSlots:       2,
		Cores:             4,
		DiskMBps:          80,
		NetMBps:           100,
		MemTotalKB:        7864320, // 7.5 GB
		BlockSizeMB:       16,
		Replication:       3,
		TargetJobs:        3,
		Seed:              seed,
		Start:             time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		SpeculativeLagSec: 75,
		TaskTimeoutSec:    600,
		MaxTaskFailures:   4,
	}
}

// validate applies defaults and sanity-checks the configuration.
func (c *Config) validate() error {
	if c.Slaves <= 0 {
		return fmt.Errorf("hadoopsim: Slaves must be positive, got %d", c.Slaves)
	}
	if c.MapSlots <= 0 || c.ReduceSlots <= 0 {
		return fmt.Errorf("hadoopsim: slot counts must be positive")
	}
	if c.Cores <= 0 || c.DiskMBps <= 0 || c.NetMBps <= 0 {
		return fmt.Errorf("hadoopsim: node capacities must be positive")
	}
	if c.BlockSizeMB <= 0 {
		return fmt.Errorf("hadoopsim: BlockSizeMB must be positive")
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.Replication > c.Slaves {
		c.Replication = c.Slaves
	}
	if c.TargetJobs <= 0 {
		c.TargetJobs = 1
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.SpeculativeLagSec <= 0 {
		c.SpeculativeLagSec = 75
	}
	if c.TaskTimeoutSec <= 0 {
		c.TaskTimeoutSec = 600
	}
	if c.MaxTaskFailures <= 0 {
		c.MaxTaskFailures = 4
	}
	return nil
}

// Cluster is a simulated Hadoop cluster.
type Cluster struct {
	cfg    Config
	now    time.Time
	rng    *rand.Rand
	slaves []*Node

	jt      *jobTracker
	nn      *nameNode
	gridmix *gridMix

	tick uint64
}

// NewCluster builds a cluster from cfg.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg: cfg,
		now: cfg.Start,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	c.slaves = make([]*Node, cfg.Slaves)
	for i := range c.slaves {
		c.slaves[i] = newNode(i, &cfg, rand.New(rand.NewSource(cfg.Seed+int64(i)+1)), cfg.Start)
	}
	c.nn = newNameNode()
	c.jt = newJobTracker(c)
	c.gridmix = newGridMix(c)
	return c, nil
}

// Now returns the current virtual time.
func (c *Cluster) Now() time.Time { return c.now }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Slaves returns the slave nodes, index-ordered.
func (c *Cluster) Slaves() []*Node {
	out := make([]*Node, len(c.slaves))
	copy(out, c.slaves)
	return out
}

// Slave returns slave i.
func (c *Cluster) Slave(i int) *Node { return c.slaves[i] }

// JobsCompleted reports how many jobs have finished.
func (c *Cluster) JobsCompleted() int { return c.jt.jobsCompleted }

// JobsRunning reports how many jobs are currently running.
func (c *Cluster) JobsRunning() int { return len(c.jt.jobs) }

// TasksCompleted reports total completed task attempts (maps + reduces).
func (c *Cluster) TasksCompleted() int { return c.jt.tasksCompleted }

// Tick advances virtual time by one second, running one full scheduling,
// resource-allocation, and accounting round.
func (c *Cluster) Tick() {
	c.now = c.now.Add(time.Second)
	c.tick++

	c.gridmix.step()
	c.jt.step()

	// Gather demands from every running attempt and active fault.
	for _, n := range c.slaves {
		n.beginTick(c.now)
	}
	c.allocateAndAdvance()
	for _, n := range c.slaves {
		n.finishTick(c.now)
	}
	c.jt.reap()
}

// RunFor advances the cluster by d of virtual time.
func (c *Cluster) RunFor(d time.Duration) {
	ticks := int(d / time.Second)
	for i := 0; i < ticks; i++ {
		c.Tick()
	}
}
