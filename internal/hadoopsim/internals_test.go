package hadoopsim

import (
	"math"
	"testing"
	"time"
)

func TestHDFSPlacementInvariants(t *testing.T) {
	c := testCluster(t, 5, 61)
	for i := 0; i < 200; i++ {
		b := c.nn.allocate(c, 16, i%5)
		if len(b.replicas) != c.cfg.Replication {
			t.Fatalf("block has %d replicas, want %d", len(b.replicas), c.cfg.Replication)
		}
		seen := make(map[int]bool)
		for _, r := range b.replicas {
			if r < 0 || r >= 5 {
				t.Fatalf("replica index %d out of range", r)
			}
			if seen[r] {
				t.Fatalf("duplicate replica on slave %d", r)
			}
			seen[r] = true
		}
		if b.replicas[0] != i%5 {
			t.Fatalf("primary replica = %d, want %d", b.replicas[0], i%5)
		}
		if !b.hasReplica(i % 5) {
			t.Fatal("hasReplica(primary) = false")
		}
	}
}

func TestHDFSDeleteIdempotent(t *testing.T) {
	c := testCluster(t, 3, 62)
	b := c.nn.allocate(c, 8, -1)
	if got := c.nn.delete(b.id); got == nil {
		t.Fatal("first delete should return the block")
	}
	if got := c.nn.delete(b.id); got != nil {
		t.Fatal("second delete should return nil")
	}
}

func TestResourceConservation(t *testing.T) {
	// Per tick, granted resources never exceed node capacity.
	c := testCluster(t, 5, 63)
	for i := 0; i < 300; i++ {
		c.Tick()
		for _, n := range c.slaves {
			if used := n.cpuDemand * n.cpuGrant; used > n.cfg.Cores*1.0001 {
				t.Fatalf("tick %d: node %s cpu grant %.2f exceeds %.0f cores", i, n.Name, used, n.cfg.Cores)
			}
			if used := n.diskDemand * n.diskScale; used > n.cfg.DiskMBps*1.0001 {
				t.Fatalf("tick %d: node %s disk grant %.2f exceeds %.0f MB/s", i, n.Name, used, n.cfg.DiskMBps)
			}
			net := n.effectiveNetMBps()
			if used := n.txDemand * n.txScale; used > net*1.0001 {
				t.Fatalf("tick %d: node %s tx grant %.2f exceeds %.0f MB/s", i, n.Name, used, net)
			}
			if used := n.rxDemand * n.rxScale; used > net*1.0001 {
				t.Fatalf("tick %d: node %s rx grant %.2f exceeds %.0f MB/s", i, n.Name, used, net)
			}
		}
	}
}

func TestSlotInvariants(t *testing.T) {
	c := testCluster(t, 5, 64)
	for i := 0; i < 600; i++ {
		c.Tick()
		for _, n := range c.slaves {
			if len(n.mapAttempts) > c.cfg.MapSlots {
				t.Fatalf("node %s has %d map attempts, slots %d", n.Name, len(n.mapAttempts), c.cfg.MapSlots)
			}
			if len(n.reduceAttempts) > c.cfg.ReduceSlots {
				t.Fatalf("node %s has %d reduce attempts, slots %d", n.Name, len(n.reduceAttempts), c.cfg.ReduceSlots)
			}
			for _, a := range append(append([]*attempt(nil), n.mapAttempts...), n.reduceAttempts...) {
				if a.finished {
					t.Fatalf("finished attempt still occupies a slot on %s", n.Name)
				}
				if a.node != n {
					t.Fatal("attempt node pointer inconsistent")
				}
			}
		}
	}
}

func TestJobAccountingConsistency(t *testing.T) {
	c := testCluster(t, 5, 65)
	c.RunFor(10 * time.Minute)
	for _, j := range c.jt.jobs {
		if j.mapsDone > len(j.maps) {
			t.Fatalf("job %d: mapsDone %d > maps %d", j.id, j.mapsDone, len(j.maps))
		}
		if j.redsDone > len(j.reduces) {
			t.Fatalf("job %d: redsDone %d > reduces %d", j.id, j.redsDone, len(j.reduces))
		}
		done := 0
		for _, tk := range j.maps {
			if tk.done {
				done++
			}
		}
		if done != j.mapsDone {
			t.Fatalf("job %d: counted %d done maps, recorded %d", j.id, done, j.mapsDone)
		}
	}
}

func TestGridMixScalesWithClusterSize(t *testing.T) {
	small := testCluster(t, 4, 66)
	large := testCluster(t, 16, 66)
	small.Tick()
	large.Tick()
	var smallTasks, largeTasks int
	for _, j := range small.jt.jobs {
		smallTasks += len(j.maps) + len(j.reduces)
	}
	for _, j := range large.jt.jobs {
		largeTasks += len(j.maps) + len(j.reduces)
	}
	if largeTasks <= smallTasks {
		t.Errorf("16-slave cluster jobs have %d tasks, 4-slave %d; workload should scale", largeTasks, smallTasks)
	}
}

func TestGridMixClassSanity(t *testing.T) {
	for _, class := range gridMixClasses {
		if class.mapsPerSlaveMin <= 0 || class.mapsPerSlaveMax < class.mapsPerSlaveMin {
			t.Errorf("%s: bad map range", class.name)
		}
		if class.redsPerSlaveMin <= 0 || class.redsPerSlaveMax < class.redsPerSlaveMin {
			t.Errorf("%s: bad reduce range", class.name)
		}
		if class.inputMBPerMap <= 0 || class.mapCPUPerMB <= 0 {
			t.Errorf("%s: bad cost model", class.name)
		}
		if class.mapOutputRatio < 0 || class.outputRatio < 0 {
			t.Errorf("%s: negative data ratio", class.name)
		}
	}
	if len(gridMixClasses) != 5 {
		t.Errorf("GridMix has %d job types, the paper says 5", len(gridMixClasses))
	}
}

func TestTaskTimeoutFailsHungAttempt(t *testing.T) {
	cfg := DefaultConfig(4, 67)
	cfg.SpeculativeLagSec = 1 << 30 // disable speculation to isolate timeout
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Minute)
	if err := c.InjectFault(0, FaultHang1036); err != nil {
		t.Fatal(err)
	}
	// Run past the 600 s task timeout.
	c.RunFor(time.Duration(cfg.TaskTimeoutSec+180) * time.Second)
	lines, _ := c.Slave(0).TaskTrackerLog().ReadFrom(0)
	timeouts := 0
	for _, l := range lines {
		if contains(l, "failed to report status") {
			timeouts++
		}
	}
	if timeouts == 0 {
		t.Error("hung attempts should hit the task timeout")
	}
}

func TestBlacklistStopsScheduling(t *testing.T) {
	c := testCluster(t, 4, 68)
	c.RunFor(time.Minute)
	if err := c.Blacklist(1, true); err != nil {
		t.Fatal(err)
	}
	if !c.Blacklisted(1) {
		t.Fatal("Blacklisted(1) = false after Blacklist")
	}
	before := countLaunches(c.Slave(1))
	c.RunFor(5 * time.Minute)
	// Existing tasks drain; no NEW launches appear.
	if got := countLaunches(c.Slave(1)); got != before {
		t.Errorf("blacklisted node received %d new launches", got-before)
	}
	// Reinstate and verify scheduling resumes.
	if err := c.Blacklist(1, false); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Minute)
	if got := countLaunches(c.Slave(1)); got <= before {
		t.Error("reinstated node never received tasks")
	}
	if err := c.Blacklist(99, true); err == nil {
		t.Error("out-of-range blacklist should error")
	}
	if err := c.BlacklistByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestCountersFiniteAndSane(t *testing.T) {
	c := testCluster(t, 3, 69)
	c.RunFor(5 * time.Minute)
	for _, n := range c.Slaves() {
		snap, err := n.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Mem.MemFree > snap.Mem.MemTotal {
			t.Errorf("%s: MemFree %d > MemTotal %d", n.Name, snap.Mem.MemFree, snap.Mem.MemTotal)
		}
		if snap.Load.Load1 < 0 || math.IsNaN(snap.Load.Load1) || math.IsInf(snap.Load.Load1, 0) {
			t.Errorf("%s: Load1 = %v", n.Name, snap.Load.Load1)
		}
		total := snap.Stat.CPUTotal.Total()
		expected := uint64(5*60) * uint64(c.cfg.Cores) * 100
		if total < expected*8/10 || total > expected*12/10 {
			t.Errorf("%s: total jiffies %d far from expected %d", n.Name, total, expected)
		}
	}
}
