package hadoopsim

import (
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/procfs"
	"github.com/asdf-project/asdf/internal/sadc"
)

func testCluster(t *testing.T, slaves int, seed int64) *Cluster {
	t.Helper()
	c, err := NewCluster(DefaultConfig(slaves, seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(0, 1)
	if _, err := NewCluster(bad); err == nil {
		t.Error("zero slaves should be rejected")
	}
	bad = DefaultConfig(3, 1)
	bad.BlockSizeMB = 0
	if _, err := NewCluster(bad); err == nil {
		t.Error("zero block size should be rejected")
	}
	// Replication is clamped to the cluster size.
	cfg := DefaultConfig(2, 1)
	cfg.Replication = 5
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.Replication != 2 {
		t.Errorf("Replication = %d, want clamped to 2", c.cfg.Replication)
	}
}

func TestClusterProgressesAndCompletesJobs(t *testing.T) {
	c := testCluster(t, 6, 42)
	c.RunFor(10 * time.Minute)
	if c.JobsCompleted() == 0 {
		t.Error("no jobs completed in 10 virtual minutes")
	}
	if c.TasksCompleted() == 0 {
		t.Error("no tasks completed")
	}
	if c.JobsRunning() == 0 {
		t.Error("GridMix should keep jobs running")
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() (int, uint64) {
		c := testCluster(t, 5, 7)
		c.RunFor(5 * time.Minute)
		snap, err := c.Slave(2).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return c.TasksCompleted(), snap.Stat.CPUTotal.User
	}
	t1, u1 := run()
	t2, u2 := run()
	if t1 != t2 || u1 != u2 {
		t.Errorf("same seed diverged: tasks %d vs %d, user jiffies %d vs %d", t1, t2, u1, u2)
	}
}

func TestAllSlavesDoWork(t *testing.T) {
	c := testCluster(t, 8, 11)
	c.RunFor(5 * time.Minute)
	for i, n := range c.Slaves() {
		snap, err := n.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		busy := snap.Stat.CPUTotal.User + snap.Stat.CPUTotal.System
		if busy == 0 {
			t.Errorf("slave %d never used CPU", i)
		}
		if n.TaskTrackerLog().Len() == 0 {
			t.Errorf("slave %d has an empty tasktracker log", i)
		}
	}
}

func TestCountersAreMonotonic(t *testing.T) {
	c := testCluster(t, 4, 3)
	var prev *procfs.Snapshot
	for i := 0; i < 120; i++ {
		c.Tick()
		snap, err := c.Slave(0).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if snap.Stat.CPUTotal.Total() < prev.Stat.CPUTotal.Total() {
				t.Fatal("cpu jiffies went backwards")
			}
			if snap.Nets[0].RxBytes < prev.Nets[0].RxBytes {
				t.Fatal("rx bytes went backwards")
			}
			if snap.Disks[0].SectorsWritten < prev.Disks[0].SectorsWritten {
				t.Fatal("sectors written went backwards")
			}
		}
		prev = snap
	}
}

func TestCPUJiffiesConserved(t *testing.T) {
	c := testCluster(t, 4, 5)
	c.RunFor(2 * time.Minute)
	snap, err := c.Slave(1).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cpu := snap.Stat.CPUTotal
	total := cpu.Total()
	// 120 seconds * 4 cores * 100 jiffies = 48000, within jitter.
	want := 120.0 * 4 * 100
	if float64(total) < want*0.9 || float64(total) > want*1.1 {
		t.Errorf("total jiffies = %d, want about %v", total, want)
	}
}

func TestLogsParseBackToStates(t *testing.T) {
	// The simulator's logs must round-trip through the ASDF log parser:
	// every line is either parsed or provably irrelevant, and the parsed
	// states reflect real task activity.
	c := testCluster(t, 5, 9)
	c.RunFor(4 * time.Minute)
	sawTaskActivity := false
	for _, n := range c.Slaves() {
		p := hadooplog.NewParser(hadooplog.KindTaskTracker)
		lines, _ := n.TaskTrackerLog().ReadFrom(0)
		for _, l := range lines {
			if err := p.ParseLine(l); err != nil {
				t.Fatalf("slave %s line %q: %v", n.Name, l, err)
			}
		}
		if p.LinesSkipped > 0 {
			t.Errorf("slave %s: %d tasktracker lines not understood by the parser", n.Name, p.LinesSkipped)
		}
		p.Flush(c.Now())
		for _, v := range p.Drain() {
			for _, x := range v.Counts {
				if x > 0 {
					sawTaskActivity = true
				}
			}
		}

		dp := hadooplog.NewParser(hadooplog.KindDataNode)
		dnLines, _ := n.DataNodeLog().ReadFrom(0)
		for _, l := range dnLines {
			if err := dp.ParseLine(l); err != nil {
				t.Fatalf("slave %s dn line %q: %v", n.Name, l, err)
			}
		}
		if dp.LinesSkipped > 0 {
			t.Errorf("slave %s: %d datanode lines not understood", n.Name, dp.LinesSkipped)
		}
	}
	if !sawTaskActivity {
		t.Error("no task states inferred from any slave's logs")
	}
}

func TestDataNodeLogsIncludeBlockEvents(t *testing.T) {
	c := testCluster(t, 5, 13)
	c.RunFor(8 * time.Minute)
	var reads, writes, deletes int
	for _, n := range c.Slaves() {
		p := hadooplog.NewParser(hadooplog.KindDataNode)
		lines, _ := n.DataNodeLog().ReadFrom(0)
		for _, l := range lines {
			if err := p.ParseLine(l); err != nil {
				t.Fatal(err)
			}
		}
		p.Flush(c.Now())
		for _, v := range p.Drain() {
			reads += int(v.Counts[1])
			writes += int(v.Counts[0])
			deletes += int(v.Counts[2])
		}
	}
	if reads == 0 {
		t.Error("no block reads observed")
	}
	if writes == 0 {
		t.Error("no block writes observed")
	}
	if deletes == 0 {
		t.Error("no block deletions observed")
	}
}

// collectBusy runs the cluster with a sadc collector per node and returns
// mean cpu busy and iowait percentages per node over the interval.
func collectNodeMeans(t *testing.T, c *Cluster, seconds int, metric string) []float64 {
	t.Helper()
	idx := -1
	for i, name := range sadc.NodeMetricNames {
		if name == metric {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatalf("metric %q unknown", metric)
	}
	collectors := make([]*sadc.Collector, len(c.Slaves()))
	sums := make([]float64, len(collectors))
	for i, n := range c.Slaves() {
		collectors[i] = sadc.NewCollector(n)
		if _, err := collectors[i].Collect(); err != nil { // warmup
			t.Fatal(err)
		}
	}
	for s := 0; s < seconds; s++ {
		c.Tick()
		for i := range collectors {
			rec, err := collectors[i].Collect()
			if err != nil {
				t.Fatal(err)
			}
			sums[i] += rec.Node[idx]
		}
	}
	for i := range sums {
		sums[i] /= float64(seconds)
	}
	return sums
}

func othersMean(vals []float64, skip int) float64 {
	var s float64
	var n int
	for i, v := range vals {
		if i == skip {
			continue
		}
		s += v
		n++
	}
	return s / float64(n)
}

func TestCPUHogManifestsInCPUMetrics(t *testing.T) {
	c := testCluster(t, 6, 21)
	c.RunFor(2 * time.Minute) // warm the cluster up
	if err := c.InjectFault(2, FaultCPUHog); err != nil {
		t.Fatal(err)
	}
	busy := collectNodeMeans(t, c, 120, "cpu_busy_pct")
	peers := othersMean(busy, 2)
	if busy[2] < peers+15 {
		t.Errorf("CPUHog node busy%% = %.1f, peers = %.1f; want clear separation", busy[2], peers)
	}
}

func TestDiskHogManifestsInDiskMetrics(t *testing.T) {
	c := testCluster(t, 6, 22)
	c.RunFor(2 * time.Minute)
	if err := c.InjectFault(1, FaultDiskHog); err != nil {
		t.Fatal(err)
	}
	util := collectNodeMeans(t, c, 120, "disk_util_pct")
	peers := othersMean(util, 1)
	if util[1] < peers+20 {
		t.Errorf("DiskHog node disk util = %.1f, peers = %.1f; want clear separation", util[1], peers)
	}
}

func TestDiskHogEndsAfterWritingItsData(t *testing.T) {
	cfg := DefaultConfig(4, 23)
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InjectFault(0, FaultDiskHog); err != nil {
		t.Fatal(err)
	}
	// 20 GB at <= 80 MB/s takes >= 256 s; after 500 s it must be done.
	c.RunFor(500 * time.Second)
	if c.Slave(0).diskHogLeft != 0 {
		t.Errorf("disk hog still has %.0f MB left after 500 s", c.Slave(0).diskHogLeft)
	}
}

func TestPacketLossManifestsInNetworkMetrics(t *testing.T) {
	c := testCluster(t, 6, 24)
	c.RunFor(2 * time.Minute)
	if err := c.InjectFault(3, FaultPacketLoss); err != nil {
		t.Fatal(err)
	}
	errs := collectNodeMeans(t, c, 120, "net_rx_errs_per_sec")
	peers := othersMean(errs, 3)
	if errs[3] <= peers {
		t.Errorf("PacketLoss node rx errors = %.2f, peers = %.2f; want elevated", errs[3], peers)
	}
}

func TestHang1036KeepsMapsRunningForever(t *testing.T) {
	c := testCluster(t, 6, 25)
	c.RunFor(2 * time.Minute)
	if err := c.InjectFault(4, FaultHang1036); err != nil {
		t.Fatal(err)
	}
	c.RunFor(4 * time.Minute)
	n := c.Slave(4)
	if len(n.mapAttempts) == 0 {
		t.Fatal("faulty node has no map attempts occupying slots")
	}
	hung := 0
	for _, a := range n.mapAttempts {
		if a.hang {
			hung++
		}
	}
	if hung == 0 {
		t.Error("no hung map attempts on the faulty node")
	}
	// The cluster keeps making progress via speculative re-execution.
	before := c.TasksCompleted()
	c.RunFor(2 * time.Minute)
	if c.TasksCompleted() <= before {
		t.Error("cluster stopped completing tasks despite speculation")
	}
}

func TestHang1152FailsReducesMidCopy(t *testing.T) {
	c := testCluster(t, 6, 26)
	c.RunFor(2 * time.Minute)
	if err := c.InjectFault(5, FaultHang1152); err != nil {
		t.Fatal(err)
	}
	c.RunFor(8 * time.Minute)
	lines, _ := c.Slave(5).TaskTrackerLog().ReadFrom(0)
	failures := 0
	for _, l := range lines {
		if contains(l, "failed to rename map output") {
			failures++
		}
	}
	if failures == 0 {
		t.Error("no mid-copy reduce failures logged on the faulty node")
	}
}

func TestHang2080StalsReducesAtSort(t *testing.T) {
	c := testCluster(t, 6, 27)
	c.RunFor(2 * time.Minute)
	if err := c.InjectFault(0, FaultHang2080); err != nil {
		t.Fatal(err)
	}
	// Hung attempts are eventually killed once a speculative twin wins, so
	// scan every tick for a reduce stuck in the sort phase.
	n := c.Slave(0)
	stuckSeconds := 0
	for i := 0; i < 10*60; i++ {
		c.Tick()
		for _, a := range n.reduceAttempts {
			if a.hang && a.phase == phaseSort {
				stuckSeconds++
			}
		}
	}
	if stuckSeconds == 0 {
		t.Error("no reduces ever hung in the sort phase on the faulty node")
	}
}

func TestInjectFaultValidation(t *testing.T) {
	c := testCluster(t, 3, 1)
	if err := c.InjectFault(99, FaultCPUHog); err == nil {
		t.Error("out-of-range node index should be rejected")
	}
	if err := c.InjectFault(1, FaultCPUHog); err != nil {
		t.Fatal(err)
	}
	if got := c.FaultyNodes(); len(got) != 1 || got[0] != 1 {
		t.Errorf("FaultyNodes = %v", got)
	}
	if err := c.InjectFault(1, FaultNone); err != nil {
		t.Fatal(err)
	}
	if got := c.FaultyNodes(); len(got) != 0 {
		t.Errorf("FaultyNodes after clear = %v", got)
	}
}

func TestFaultNames(t *testing.T) {
	want := map[FaultKind]string{
		FaultNone: "None", FaultCPUHog: "CPUHog", FaultDiskHog: "DiskHog",
		FaultPacketLoss: "PacketLoss", FaultHang1036: "HADOOP-1036",
		FaultHang1152: "HADOOP-1152", FaultHang2080: "HADOOP-2080",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
	if len(TableTwoFaults) != 6 {
		t.Errorf("TableTwoFaults = %d entries, want 6 (Table 2)", len(TableTwoFaults))
	}
	// The production-fault extensions and full-library ordering are covered
	// in fault_test.go.
}

func TestSadcCollectorWorksOnSimulatedNodes(t *testing.T) {
	c := testCluster(t, 3, 30)
	col := sadc.NewCollector(c.Slave(0))
	if _, err := col.Collect(); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * time.Second)
	rec, err := col.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Node) != len(sadc.NodeMetricNames) {
		t.Fatalf("node vector = %d metrics", len(rec.Node))
	}
	if len(rec.Proc) != 2 {
		t.Errorf("expected tasktracker+datanode process metrics, got %d", len(rec.Proc))
	}
	if rec.ProcComm[pidTaskTracker] != "java_tasktracker" {
		t.Errorf("ProcComm = %v", rec.ProcComm)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
