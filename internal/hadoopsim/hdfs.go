package hadoopsim

// nameNode tracks HDFS block placement: which slaves hold a replica of each
// block. Block contents are never materialized; only placement and size
// matter to the simulation.
type nameNode struct {
	nextBlockID uint64
	blocks      map[uint64]*blockInfo
}

// blockInfo records one HDFS block's replicas and size.
type blockInfo struct {
	id       uint64
	sizeMB   float64
	replicas []int // slave indexes
}

func newNameNode() *nameNode {
	return &nameNode{nextBlockID: 1000000000, blocks: make(map[uint64]*blockInfo)}
}

// allocate creates a block of sizeMB with replicas placed on distinct
// slaves: primary first (caller chooses; -1 for random), the rest random.
func (nn *nameNode) allocate(c *Cluster, sizeMB float64, primary int) *blockInfo {
	nn.nextBlockID++
	b := &blockInfo{id: nn.nextBlockID, sizeMB: sizeMB}
	want := c.cfg.Replication
	used := make(map[int]bool, want)
	if primary >= 0 && primary < len(c.slaves) {
		b.replicas = append(b.replicas, primary)
		used[primary] = true
	}
	for len(b.replicas) < want {
		idx := c.rng.Intn(len(c.slaves))
		if used[idx] {
			continue
		}
		used[idx] = true
		b.replicas = append(b.replicas, idx)
	}
	nn.blocks[b.id] = b
	return b
}

// delete removes a block from the namespace, returning its replicas so the
// datanodes can log the deletions.
func (nn *nameNode) delete(id uint64) *blockInfo {
	b, ok := nn.blocks[id]
	if !ok {
		return nil
	}
	delete(nn.blocks, id)
	return b
}

// hasReplica reports whether slave idx holds a replica of the block.
func (b *blockInfo) hasReplica(idx int) bool {
	for _, r := range b.replicas {
		if r == idx {
			return true
		}
	}
	return false
}
