package hadoopsim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/procfs"
)

// Well-known simulated pids for the per-node daemons.
const (
	pidDataNode    = 3001
	pidTaskTracker = 3002
)

// Node is one simulated slave: a tasktracker plus a datanode, with CPU,
// disk, and network capacities and cumulative /proc-style counters.
type Node struct {
	// Index is the slave index (0-based); Name is "slaveNN".
	Index int
	Name  string
	Addr  string

	cfg *Config
	rng *rand.Rand

	// Logs, written in Hadoop 0.18 format.
	ttBuf *hadooplog.Buffer
	dnBuf *hadooplog.Buffer
	ttLog *hadooplog.Writer
	dnLog *hadooplog.Writer

	// Fault state.
	fault       FaultKind
	faultSince  time.Time
	diskHogLeft float64 // MB remaining of the 20 GB sequential write
	packetLoss  float64 // fraction of packets lost

	// Production-fault state (the post-Table-2 fault library).
	leakedKB        float64 // FaultMemLeak: cumulative leaked resident KB
	gcPaused        bool    // FaultGCPause: inside a stop-the-world pause
	noisyActive     bool    // FaultNoisyNeighbor: co-tenant burst active
	stragglerMul    float64 // FaultStraggler: work slowdown multiplier (>=1)
	partitionDropMB float64 // FaultNetPartition: rx MB black-holed this tick

	// Heartbeat state (per-tick): whether this tick's heartbeat reached
	// the jobtracker, when one last did, and until when the TT's RPC
	// connection is in TCP retransmission backoff (packet loss).
	hbOK            bool
	lastHeartbeatOK time.Time
	hbBackoffUntil  time.Time

	// Per-tick working state (rebuilt each tick).
	cpuDemand   float64 // cores requested this tick by tasks+faults
	cpuGrant    float64 // scaling applied: grant = demand * cpuScale
	diskDemand  float64 // MB wanted this tick
	diskScale   float64
	txDemand    float64
	rxDemand    float64
	txScale     float64
	rxScale     float64
	faultCPU    float64 // cores consumed by fault processes this tick
	faultDiskMB float64 // MB written by fault processes this tick

	// Attempts currently occupying slots on this node.
	mapAttempts    []*attempt
	reduceAttempts []*attempt

	// Cumulative counters backing the procfs snapshot. Guarded by mu so
	// collection daemons can snapshot concurrently with ticking.
	mu       sync.Mutex
	counters nodeCounters
	procTT   processCounters
	procDN   processCounters
	lastTime time.Time
	loadEWMA float64
}

// nodeCounters is the cumulative counter set behind /proc.
type nodeCounters struct {
	userJ, niceJ, sysJ, idleJ, iowaitJ uint64
	ctxt, intr, forks                  uint64
	procsRunning, procsBlocked         uint64 // gauges
	reads, writes                      uint64
	sectorsRead, sectorsWritten        uint64
	ioTimeMs, weightedIOMs             uint64
	readTimeMs, writeTimeMs            uint64
	rxBytes, txBytes                   uint64
	rxPkts, txPkts                     uint64
	rxErrs, rxDrops                    uint64
	pgpgin, pgpgout, pgfault, pgmajflt uint64
	memUsedKB                          uint64 // gauge
	runningTasks                       int    // gauge
	uptimeSec                          float64
}

// processCounters models one daemon process for the per-process metrics.
type processCounters struct {
	utimeJ, stimeJ   uint64
	minflt, majflt   uint64
	rssKB            uint64
	threads          int
	readB, writeB    uint64
	running          bool
	startTimeJiffies uint64
}

func newNode(index int, cfg *Config, rng *rand.Rand, start time.Time) *Node {
	ttBuf := hadooplog.NewBuffer(1 << 18)
	dnBuf := hadooplog.NewBuffer(1 << 18)
	n := &Node{
		Index:    index,
		Name:     fmt.Sprintf("slave%02d", index+1),
		Addr:     fmt.Sprintf("10.1.0.%d:50010", index+2),
		cfg:      cfg,
		rng:      rng,
		ttBuf:    ttBuf,
		dnBuf:    dnBuf,
		ttLog:    hadooplog.NewWriter(hadooplog.KindTaskTracker, ttBuf),
		dnLog:    hadooplog.NewWriter(hadooplog.KindDataNode, dnBuf),
		lastTime: start,
	}
	n.procTT = processCounters{rssKB: 180 * 1024, threads: 25, running: true, startTimeJiffies: 600}
	n.procDN = processCounters{rssKB: 120 * 1024, threads: 18, running: true, startTimeJiffies: 500}
	n.counters.memUsedKB = 900 * 1024 // daemons + OS baseline
	return n
}

// TaskTrackerLog returns the node's TaskTracker log buffer.
func (n *Node) TaskTrackerLog() *hadooplog.Buffer { return n.ttBuf }

// DataNodeLog returns the node's DataNode log buffer.
func (n *Node) DataNodeLog() *hadooplog.Buffer { return n.dnBuf }

// Fault reports the currently injected fault.
func (n *Node) Fault() FaultKind { return n.fault }

// freeMapSlots reports available map slots.
func (n *Node) freeMapSlots() int { return n.cfg.MapSlots - len(n.mapAttempts) }

// freeReduceSlots reports available reduce slots.
func (n *Node) freeReduceSlots() int { return n.cfg.ReduceSlots - len(n.reduceAttempts) }

// RunningTasks reports the number of task attempts occupying slots.
func (n *Node) RunningTasks() int { return len(n.mapAttempts) + len(n.reduceAttempts) }

// effectiveNetMBps applies fault-induced network degradation: 50% packet
// loss collapses TCP goodput to a few percent of nominal (every other
// segment retransmits, timers back off, the congestion window never
// grows), which we model as a fixed small fraction.
func (n *Node) effectiveNetMBps() float64 {
	if n.packetLoss > 0 {
		return n.cfg.NetMBps * 0.05
	}
	return n.cfg.NetMBps
}

// effectiveDiskMBps applies fault-induced disk degradation: a failing disk
// delivers only a fraction of its nominal bandwidth, so the same demand
// saturates it and queues behind it.
func (n *Node) effectiveDiskMBps() float64 {
	if n.fault == FaultDiskDegrade {
		return n.cfg.DiskMBps * diskDegradeFactor
	}
	return n.cfg.DiskMBps
}

// beginTick resets per-tick demand accounting and registers fault demands.
// now is the tick being started; phase-cycled faults (noisy neighbor, GC
// pause) and ramped faults (memory leak, straggler) derive their state from
// the elapsed time since injection, keeping runs deterministic.
func (n *Node) beginTick(now time.Time) {
	n.cpuDemand = daemonCPUCores
	n.diskDemand = 0
	n.txDemand = 0
	n.rxDemand = 0
	n.faultCPU = 0
	n.faultDiskMB = 0
	n.gcPaused = false
	n.noisyActive = false
	n.partitionDropMB = 0

	elapsed := now.Sub(n.faultSince).Seconds()
	switch n.fault {
	case FaultCPUHog:
		n.cpuDemand += cpuHogUtilization * n.cfg.Cores
	case FaultDiskHog:
		if n.diskHogLeft > 0 {
			n.diskDemand += n.cfg.DiskMBps // saturate the disk
		}
	case FaultMemLeak:
		n.leakedKB += memLeakKBPerSec
	case FaultNoisyNeighbor:
		n.noisyActive = math.Mod(elapsed, noisyPeriodSec) < noisyBurstSec
		if n.noisyActive {
			n.cpuDemand += noisyCPUFrac * n.cfg.Cores
			n.diskDemand += noisyDiskFrac * n.cfg.DiskMBps
		}
	case FaultGCPause:
		n.gcPaused = math.Mod(elapsed, gcCycleSec) < gcPauseSec
		if n.gcPaused {
			n.cpuDemand += gcBurnFrac * n.cfg.Cores // collector threads spin
		}
	case FaultStraggler:
		n.stragglerMul = 1 + (elapsed / stragglerRampSec)
		if n.stragglerMul > stragglerMaxMul {
			n.stragglerMul = stragglerMaxMul
		}
	}
}

// progressFactor scales an attempt's effective progress on this node for
// the current tick: zero during a stop-the-world pause, 1/stragglerMul on a
// straggling node, 1 otherwise. Demands are still registered at full size —
// a straggling node looks busy while its tasks crawl, which is exactly the
// signature detection has to work from.
func (n *Node) progressFactor() float64 {
	switch {
	case n.gcPaused:
		return 0
	case n.fault == FaultStraggler && n.stragglerMul > 1:
		return 1 / n.stragglerMul
	}
	return 1
}

// daemonCPUCores is the background CPU of the tasktracker+datanode JVMs.
const daemonCPUCores = 0.06

// cpuHogUtilization matches the paper's CPUHog: a task consuming 70% of
// total CPU.
const cpuHogUtilization = 0.70

// addCPUDemand registers a task's CPU request (cores) for this tick and
// returns nothing; allocation happens cluster-wide.
func (n *Node) addCPUDemand(cores float64) { n.cpuDemand += cores }

// addDiskDemand registers disk MB wanted this tick.
func (n *Node) addDiskDemand(mb float64) { n.diskDemand += mb }

// computeScales fixes the per-resource grant scaling after all demands are
// registered.
func (n *Node) computeScales() {
	n.cpuGrant = 1
	if n.cpuDemand > n.cfg.Cores {
		n.cpuGrant = n.cfg.Cores / n.cpuDemand
	}
	n.diskScale = 1
	if disk := n.effectiveDiskMBps(); n.diskDemand > disk {
		n.diskScale = disk / n.diskDemand
	}
	net := n.effectiveNetMBps()
	n.txScale = 1
	if n.txDemand > net {
		n.txScale = net / n.txDemand
	}
	n.rxScale = 1
	if n.rxDemand > net {
		n.rxScale = net / n.rxDemand
	}
}

// jitter returns x scaled by 1 + N(0, sd): small measurement noise so peer
// nodes are similar but not identical.
func (n *Node) jitter(x, sd float64) float64 {
	v := x * (1 + n.rng.NormFloat64()*sd)
	if v < 0 {
		return 0
	}
	return v
}

// finishTick converts this tick's grants into cumulative counters.
func (n *Node) finishTick(now time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()

	// CPU accounting. Task+daemon+fault CPU was granted as
	// demand*cpuGrant cores for one second.
	usedCores := n.cpuDemand * n.cpuGrant
	if usedCores > n.cfg.Cores {
		usedCores = n.cfg.Cores
	}
	usedJ := n.jitter(usedCores*100, 0.03) // jiffies this second
	userJ := usedJ * 0.82
	sysJ := usedJ * 0.18

	// Disk accounting, against the fault-adjusted effective bandwidth.
	diskCap := n.effectiveDiskMBps()
	diskMB := n.diskDemand * n.diskScale
	if n.fault == FaultDiskHog && n.diskHogLeft > 0 {
		hogShare := diskCap * n.diskScale
		n.faultDiskMB = hogShare
		n.diskHogLeft -= hogShare
		if n.diskHogLeft <= 0 {
			n.diskHogLeft = 0
		}
	}
	diskUtil := 0.0
	if diskCap > 0 {
		diskUtil = diskMB / diskCap
		if diskUtil > 1 {
			diskUtil = 1
		}
	}

	// I/O wait: runnable-but-blocked time grows with disk saturation.
	totalJ := n.cfg.Cores * 100
	iowaitJ := diskUtil * 0.35 * totalJ
	if usedJ+iowaitJ > totalJ {
		iowaitJ = totalJ - usedJ
		if iowaitJ < 0 {
			iowaitJ = 0
		}
	}
	idleJ := totalJ - usedJ - iowaitJ
	if idleJ < 0 {
		idleJ = 0
	}

	n.counters.userJ += uint64(userJ)
	n.counters.sysJ += uint64(sysJ)
	n.counters.iowaitJ += uint64(iowaitJ)
	n.counters.idleJ += uint64(idleJ)

	// Context switches and interrupts track activity.
	n.counters.ctxt += uint64(n.jitter(800+6000*usedCores/n.cfg.Cores+2000*diskUtil, 0.08))
	n.counters.intr += uint64(n.jitter(400+2500*usedCores/n.cfg.Cores, 0.08))

	// Disk counters: 2048 sectors per MB.
	halfR := diskMB * 0.4 // reads vs writes split varies with workload mix
	halfW := diskMB - halfR
	n.counters.sectorsRead += uint64(n.jitter(halfR*2048, 0.05))
	n.counters.sectorsWritten += uint64(n.jitter(halfW*2048, 0.05))
	n.counters.reads += uint64(halfR * 8) // ~128 kB per request
	n.counters.writes += uint64(halfW * 8)
	ioMs := diskUtil * 1000
	n.counters.ioTimeMs += uint64(ioMs)
	n.counters.weightedIOMs += uint64(ioMs * (1 + n.diskDemand/diskCap))
	n.counters.readTimeMs += uint64(ioMs * 0.4)
	n.counters.writeTimeMs += uint64(ioMs * 0.6)

	// Network counters.
	txMB := n.txDemand * n.txScale
	rxMB := n.rxDemand * n.rxScale
	hbBytes := 2048.0 // heartbeats and control chatter with the master
	n.counters.txBytes += uint64(n.jitter(txMB*1e6+hbBytes, 0.05))
	n.counters.rxBytes += uint64(n.jitter(rxMB*1e6+hbBytes, 0.05))
	n.counters.txPkts += uint64(txMB*720 + 8)
	n.counters.rxPkts += uint64(rxMB*720 + 8)
	if n.packetLoss > 0 {
		// Dropped/error counters climb under induced loss.
		n.counters.rxErrs += uint64(n.jitter((rxMB*720+8)*n.packetLoss, 0.2))
		n.counters.rxDrops += uint64(n.jitter((rxMB*720+8)*n.packetLoss*0.5, 0.2))
	}
	if n.partitionDropMB > 0 {
		// Peers behind the partition keep retransmitting into the black
		// hole; what little leaks through the broken path shows up as
		// errored and dropped frames.
		n.counters.rxErrs += uint64(n.jitter(n.partitionDropMB*90, 0.2))
		n.counters.rxDrops += uint64(n.jitter(n.partitionDropMB*180, 0.2))
	}

	// Paging follows disk traffic.
	n.counters.pgpgin += uint64(halfR * 1024)
	n.counters.pgpgout += uint64(halfW * 1024)
	n.counters.pgfault += uint64(n.jitter(1500+4000*usedCores/n.cfg.Cores, 0.1))
	n.counters.pgmajflt += uint64(n.jitter(diskUtil*4, 0.5))

	// Memory gauge: baseline + per-attempt JVM footprint.
	n.counters.runningTasks = len(n.mapAttempts) + len(n.reduceAttempts)
	tasks := float64(n.counters.runningTasks)
	mem := 900*1024 + tasks*220*1024 + diskUtil*400*1024
	if n.fault == FaultCPUHog {
		mem += 80 * 1024
	}
	mem += n.leakedKB
	if total := float64(n.cfg.MemTotalKB); mem > memThrashFrac*total {
		// The leak has eaten the headroom: reclaim starts evicting and
		// faulting pages back in, charging major faults and page churn.
		over := mem - memThrashFrac*total
		n.counters.pgmajflt += uint64(n.jitter(over/(32*1024), 0.3))
		n.counters.pgpgin += uint64(n.jitter(over/64, 0.2))
		n.counters.pgpgout += uint64(n.jitter(over/64, 0.2))
		if cap := 0.97 * total; mem > cap {
			mem = cap // the OOM killer would fire before the gauge pegs
		}
	}
	n.counters.memUsedKB = uint64(n.jitter(mem, 0.02))

	// Run queue gauges and load average.
	runnable := usedCores
	n.counters.procsRunning = uint64(runnable + 1)
	n.counters.procsBlocked = uint64(diskUtil * 2)
	n.loadEWMA = n.loadEWMA*0.92 + (runnable+diskUtil)*0.08

	n.counters.forks += uint64(2)
	n.counters.uptimeSec += 1

	// Daemon process accounting. Task JVM CPU is attributed to the
	// tasktracker process tree and block service to the datanode; CPU
	// burned by an external hog process belongs to neither.
	switch {
	case n.fault == FaultCPUHog:
		n.faultCPU = cpuHogUtilization * n.cfg.Cores * n.cpuGrant
	case n.noisyActive:
		// The co-tenant's burn belongs to another VM: it shows in the
		// host-level counters but in neither daemon's process tree.
		n.faultCPU = noisyCPUFrac * n.cfg.Cores * n.cpuGrant
	}
	taskCores := usedCores - n.faultCPU - daemonCPUCores
	if taskCores < 0 {
		taskCores = 0
	}
	ttJ := (taskCores*0.9 + 0.04) * 100 * n.cpuGrant
	dnJ := (taskCores*0.1 + 0.02) * 100 * n.cpuGrant
	n.procTT.utimeJ += uint64(ttJ * 0.85)
	n.procTT.stimeJ += uint64(ttJ * 0.15)
	n.procDN.utimeJ += uint64(dnJ * 0.8)
	n.procDN.stimeJ += uint64(dnJ * 0.2)
	n.procTT.minflt += uint64(200 + 500*taskCores)
	n.procDN.minflt += uint64(100 + 200*diskUtil)
	n.procTT.rssKB = uint64(180*1024 + tasks*200*1024)
	n.procDN.rssKB = uint64(120*1024 + diskUtil*50*1024)
	n.procTT.threads = 25 + int(tasks)*4
	n.procDN.threads = 18 + int(diskUtil*8)
	n.procTT.readB += uint64(halfR * 0.3 * 1e6)
	n.procTT.writeB += uint64(halfW * 0.4 * 1e6)
	n.procDN.readB += uint64(halfR * 0.7 * 1e6)
	n.procDN.writeB += uint64(halfW * 0.6 * 1e6)

	n.lastTime = now
}

var _ procfs.Provider = (*Node)(nil)

// Snapshot implements procfs.Provider, exposing the node's cumulative
// counters in /proc structure. The collection pipeline reads slaves through
// this interface exactly as it would read a live kernel.
func (n *Node) Snapshot() (*procfs.Snapshot, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := n.counters

	memTotal := n.cfg.MemTotalKB
	memFree := uint64(0)
	if c.memUsedKB < memTotal {
		memFree = memTotal - c.memUsedKB
	}
	cached := uint64(float64(memTotal) * 0.15)

	perCPU := make([]procfs.CPUStat, int(n.cfg.Cores))
	nc := uint64(len(perCPU))
	if nc == 0 {
		nc = 1
	}
	for i := range perCPU {
		perCPU[i] = procfs.CPUStat{
			User: c.userJ / nc, System: c.sysJ / nc,
			Idle: c.idleJ / nc, IOWait: c.iowaitJ / nc,
		}
	}

	snap := &procfs.Snapshot{
		Time:   n.lastTime,
		Uptime: c.uptimeSec,
		Stat: procfs.Stat{
			CPUTotal: procfs.CPUStat{
				User: c.userJ, Nice: c.niceJ, System: c.sysJ,
				Idle: c.idleJ, IOWait: c.iowaitJ,
			},
			PerCPU:          perCPU,
			ContextSwitches: c.ctxt,
			Interrupts:      c.intr,
			Processes:       c.forks,
			ProcsRunning:    c.procsRunning,
			ProcsBlocked:    c.procsBlocked,
		},
		Mem: procfs.Meminfo{
			MemTotal: memTotal, MemFree: memFree,
			Buffers: 80 * 1024, Cached: cached,
			SwapTotal: 2 * 1024 * 1024, SwapFree: 2 * 1024 * 1024,
			Active: c.memUsedKB / 2, Inactive: cached / 2,
			Dirty:       uint64(float64(c.sectorsWritten%100000) * 0.1),
			CommittedAS: c.memUsedKB + 500*1024,
		},
		VM: procfs.VMStat{
			PgpgIn: c.pgpgin, PgpgOut: c.pgpgout,
			PgFault: c.pgfault, PgMajFault: c.pgmajflt,
			PgFree: c.pgfault / 2,
		},
		Load: procfs.LoadAvg{
			Load1:   n.loadEWMA,
			Load5:   n.loadEWMA * 0.9,
			Load15:  n.loadEWMA * 0.8,
			Running: int(c.procsRunning),
			Total:   120 + c.runningTasks,
		},
		Disks: []procfs.DiskStat{{
			Major: 8, Minor: 0, Name: "sda",
			ReadsCompleted: c.reads, WritesCompleted: c.writes,
			SectorsRead: c.sectorsRead, SectorsWritten: c.sectorsWritten,
			ReadTimeMs: c.readTimeMs, WriteTimeMs: c.writeTimeMs,
			IOTimeMs: c.ioTimeMs, WeightedIOMs: c.weightedIOMs,
		}},
		Nets: []procfs.NetDevStat{{
			Iface:   "eth0",
			RxBytes: c.rxBytes, TxBytes: c.txBytes,
			RxPackets: c.rxPkts, TxPackets: c.txPkts,
			RxErrors: c.rxErrs, RxDropped: c.rxDrops,
		}},
		Procs: []procfs.PIDStat{
			{
				PID: pidDataNode, Comm: "java_datanode", State: stateOf(n.procDN),
				UTime: n.procDN.utimeJ, STime: n.procDN.stimeJ,
				NumThreads: n.procDN.threads, StartTime: n.procDN.startTimeJiffies,
				VSizeBytes: 2 << 30, RSSPages: int64(n.procDN.rssKB / 4),
				MinFlt: n.procDN.minflt, MajFlt: n.procDN.majflt,
				ReadBytes: n.procDN.readB, WriteBytes: n.procDN.writeB,
			},
			{
				PID: pidTaskTracker, Comm: "java_tasktracker", State: stateOf(n.procTT),
				UTime: n.procTT.utimeJ, STime: n.procTT.stimeJ,
				NumThreads: n.procTT.threads, StartTime: n.procTT.startTimeJiffies,
				VSizeBytes: 3 << 30, RSSPages: int64(n.procTT.rssKB / 4),
				MinFlt: n.procTT.minflt, MajFlt: n.procTT.majflt,
				ReadBytes: n.procTT.readB, WriteBytes: n.procTT.writeB,
			},
		},
	}
	return snap, nil
}

func stateOf(p processCounters) byte {
	if p.running {
		return 'S'
	}
	return 'Z'
}
