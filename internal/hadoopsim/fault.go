package hadoopsim

import (
	"fmt"
	"time"
)

// FaultKind enumerates the injectable faults, one per row of Table 2 of the
// paper.
type FaultKind int

// Fault kinds.
const (
	// FaultNone: healthy node.
	FaultNone FaultKind = iota
	// FaultCPUHog emulates a CPU-intensive task consuming 70% CPU
	// (resource contention; Hadoop mailing list, Sep 13 2007).
	FaultCPUHog
	// FaultDiskHog emulates a sequential disk workload writing 20 GB
	// (excessive logging; Hadoop mailing list, Sep 26 2007).
	FaultDiskHog
	// FaultPacketLoss induces 50% packet loss, collapsing effective
	// network goodput (HADOOP-2956).
	FaultPacketLoss
	// FaultHang1036: maps on the node enter an infinite loop after an
	// unhandled exception — no progress, one core burned (HADOOP-1036).
	FaultHang1036
	// FaultHang1152: reduces on the node fail mid-copy when renaming a
	// deleted file — the attempt dies and is retried (HADOOP-1152).
	FaultHang1152
	// FaultHang2080: reduces on the node hang during the sort/merge on a
	// miscomputed checksum — no progress, no CPU burn (HADOOP-2080).
	FaultHang2080
)

// String names the fault as in the paper's figures.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "None"
	case FaultCPUHog:
		return "CPUHog"
	case FaultDiskHog:
		return "DiskHog"
	case FaultPacketLoss:
		return "PacketLoss"
	case FaultHang1036:
		return "HADOOP-1036"
	case FaultHang1152:
		return "HADOOP-1152"
	case FaultHang2080:
		return "HADOOP-2080"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// AllFaults lists the six injectable faults, in Table 2 order.
var AllFaults = []FaultKind{
	FaultCPUHog, FaultDiskHog, FaultPacketLoss,
	FaultHang1036, FaultHang1152, FaultHang2080,
}

// diskHogTotalMB is the DiskHog's sequential write volume (Table 2: 20 GB).
const diskHogTotalMB = 20 * 1024

// InjectFault activates a fault on slave nodeIndex starting at the next
// tick. Injecting FaultNone clears any active fault. Only one fault is
// active per node, matching the paper's one-fault-per-run methodology.
func (c *Cluster) InjectFault(nodeIndex int, kind FaultKind) error {
	if nodeIndex < 0 || nodeIndex >= len(c.slaves) {
		return fmt.Errorf("hadoopsim: no slave %d (cluster has %d)", nodeIndex, len(c.slaves))
	}
	n := c.slaves[nodeIndex]
	n.fault = kind
	n.faultSince = c.now
	n.packetLoss = 0
	n.diskHogLeft = 0
	switch kind {
	case FaultPacketLoss:
		n.packetLoss = 0.5
	case FaultDiskHog:
		n.diskHogLeft = diskHogTotalMB
	}
	return nil
}

// Blacklist excludes a slave from all future task scheduling — the
// mitigation the ASDF action module drives once a node is fingerpointed
// (§5 of the paper: active mitigation). Pass exclude=false to reinstate.
func (c *Cluster) Blacklist(nodeIndex int, exclude bool) error {
	if nodeIndex < 0 || nodeIndex >= len(c.slaves) {
		return fmt.Errorf("hadoopsim: no slave %d (cluster has %d)", nodeIndex, len(c.slaves))
	}
	if exclude {
		c.jt.blacklisted[nodeIndex] = true
	} else {
		delete(c.jt.blacklisted, nodeIndex)
	}
	return nil
}

// Blacklisted reports whether a slave is excluded from scheduling.
func (c *Cluster) Blacklisted(nodeIndex int) bool {
	return c.jt.blacklisted[nodeIndex]
}

// BlacklistByName blacklists the slave with the given Name; it is the
// natural Env action for the ASDF action module, which identifies nodes by
// name.
func (c *Cluster) BlacklistByName(name string) error {
	for _, n := range c.slaves {
		if n.Name == name {
			return c.Blacklist(n.Index, true)
		}
	}
	return fmt.Errorf("hadoopsim: no slave named %q", name)
}

// FaultyNodes returns the indexes of slaves with an active fault.
func (c *Cluster) FaultyNodes() []int {
	var out []int
	for i, n := range c.slaves {
		if n.fault != FaultNone {
			out = append(out, i)
		}
	}
	return out
}

// FaultSince reports when the node's fault was injected; used by tests and
// the evaluation harness for ground truth.
func (n *Node) FaultSince() time.Time { return n.faultSince }

// FaultActive reports whether the injected fault is still perturbing the
// node. A DiskHog deactivates once its 20 GB are written; every other fault
// persists until cleared.
func (n *Node) FaultActive() bool {
	if n.fault == FaultNone {
		return false
	}
	if n.fault == FaultDiskHog {
		return n.diskHogLeft > 0
	}
	return true
}
