package hadoopsim

import (
	"fmt"
	"time"
)

// FaultKind enumerates the injectable faults, one per row of Table 2 of the
// paper.
type FaultKind int

// Fault kinds.
const (
	// FaultNone: healthy node.
	FaultNone FaultKind = iota
	// FaultCPUHog emulates a CPU-intensive task consuming 70% CPU
	// (resource contention; Hadoop mailing list, Sep 13 2007).
	FaultCPUHog
	// FaultDiskHog emulates a sequential disk workload writing 20 GB
	// (excessive logging; Hadoop mailing list, Sep 26 2007).
	FaultDiskHog
	// FaultPacketLoss induces 50% packet loss, collapsing effective
	// network goodput (HADOOP-2956).
	FaultPacketLoss
	// FaultHang1036: maps on the node enter an infinite loop after an
	// unhandled exception — no progress, one core burned (HADOOP-1036).
	FaultHang1036
	// FaultHang1152: reduces on the node fail mid-copy when renaming a
	// deleted file — the attempt dies and is retried (HADOOP-1152).
	FaultHang1152
	// FaultHang2080: reduces on the node hang during the sort/merge on a
	// miscomputed checksum — no progress, no CPU burn (HADOOP-2080).
	FaultHang2080

	// The remaining kinds extend Table 2 with production-shaped faults:
	// degradations seen in shared clusters that the paper's six injections
	// do not cover. Each perturbs the same simulated sadc / hadoop-log
	// surfaces through the same node and heartbeat model.

	// FaultMemLeak is a slow-leak memory hog: a rogue process leaks
	// resident memory at a steady rate until the node starts reclaim
	// thrashing (major faults, page scans, I/O wait).
	FaultMemLeak
	// FaultNetPartition is an asymmetric network partition: the node stops
	// receiving traffic from half of its peers while its own transmissions
	// (and master heartbeats) still get through — shuffle fetches from the
	// unreachable half stall and retransmission errors climb.
	FaultNetPartition
	// FaultNoisyNeighbor is a co-tenant VM on the same host bursting CPU
	// and disk on a fixed duty cycle, stealing capacity from the slave's
	// tasks without any Hadoop-visible process to blame.
	FaultNoisyNeighbor
	// FaultDiskDegrade is disk-latency degradation (failing spindle,
	// misbehaving controller): usable disk bandwidth collapses to a
	// fraction of nominal, so I/O time and queue depth climb while
	// throughput drops.
	FaultDiskDegrade
	// FaultGCPause is a GC-like stop-the-world pathology: on a fixed cycle
	// the node's JVMs freeze for several seconds — tasks make no progress,
	// logs go silent, heartbeats are missed — while GC threads burn CPU.
	FaultGCPause
	// FaultStraggler is a straggler cascade: the node's task execution
	// slows progressively (throttled host, background scrub), widening its
	// heartbeat tail latency and pushing speculative duplicates onto peers.
	FaultStraggler
)

// String names the fault as in the paper's figures.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "None"
	case FaultCPUHog:
		return "CPUHog"
	case FaultDiskHog:
		return "DiskHog"
	case FaultPacketLoss:
		return "PacketLoss"
	case FaultHang1036:
		return "HADOOP-1036"
	case FaultHang1152:
		return "HADOOP-1152"
	case FaultHang2080:
		return "HADOOP-2080"
	case FaultMemLeak:
		return "MemLeak"
	case FaultNetPartition:
		return "NetPartition"
	case FaultNoisyNeighbor:
		return "NoisyNeighbor"
	case FaultDiskDegrade:
		return "DiskDegrade"
	case FaultGCPause:
		return "GCPause"
	case FaultStraggler:
		return "Straggler"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// AllFaults lists the twelve injectable faults: the paper's six in Table 2
// order, then the production-shaped extensions in declaration order.
var AllFaults = []FaultKind{
	FaultCPUHog, FaultDiskHog, FaultPacketLoss,
	FaultHang1036, FaultHang1152, FaultHang2080,
	FaultMemLeak, FaultNetPartition, FaultNoisyNeighbor,
	FaultDiskDegrade, FaultGCPause, FaultStraggler,
}

// TableTwoFaults lists just the paper's six faults, in Table 2 order.
var TableTwoFaults = AllFaults[:6]

// diskHogTotalMB is the DiskHog's sequential write volume (Table 2: 20 GB).
const diskHogTotalMB = 20 * 1024

// Tunables of the production-shaped faults. Magnitudes are picked to sit in
// the same "obvious to an operator staring at the right graph, invisible in
// aggregate dashboards" band as the paper's Table 2 injections.
const (
	// memLeakKBPerSec is the slow leak's growth rate (~4 MB/s: noticeable
	// within minutes on a 7.5 GB node, but far from an instant OOM).
	memLeakKBPerSec = 4 * 1024
	// memThrashFrac: once used memory crosses this fraction of total, the
	// kernel's reclaim path starts charging major faults and I/O wait.
	memThrashFrac = 0.85
	// Noisy neighbor duty cycle: noisyBurstSec of contention out of every
	// noisyPeriodSec, stealing noisyCPUFrac of the cores and
	// noisyDiskFrac of the disk bandwidth while active.
	noisyPeriodSec = 30.0
	noisyBurstSec  = 18.0
	noisyCPUFrac   = 0.5
	noisyDiskFrac  = 0.5
	// diskDegradeFactor is the fraction of nominal disk bandwidth a
	// degraded disk still delivers.
	diskDegradeFactor = 0.25
	// GC pause cycle: gcPauseSec of stop-the-world out of every
	// gcCycleSec. A stop-the-world collector runs parallel GC threads on
	// most of the machine, so the pause burns gcBurnFrac of the cores
	// while the application stands still.
	gcCycleSec = 45.0
	gcPauseSec = 10.0
	gcBurnFrac = 0.75
	// Straggler ramp: the slowdown multiplier climbs linearly by one per
	// stragglerRampSec until it reaches stragglerMaxMul; heartbeat misses
	// scale up to stragglerHBMissMax as the node slows.
	stragglerRampSec   = 20.0
	stragglerMaxMul    = 8.0
	stragglerHBMissMax = 0.35
)

// InjectFault activates a fault on slave nodeIndex starting at the next
// tick. Injecting FaultNone clears any active fault. Only one fault is
// active per node, matching the paper's one-fault-per-run methodology.
func (c *Cluster) InjectFault(nodeIndex int, kind FaultKind) error {
	if nodeIndex < 0 || nodeIndex >= len(c.slaves) {
		return fmt.Errorf("hadoopsim: no slave %d (cluster has %d)", nodeIndex, len(c.slaves))
	}
	n := c.slaves[nodeIndex]
	n.fault = kind
	n.faultSince = c.now
	n.packetLoss = 0
	n.diskHogLeft = 0
	n.leakedKB = 0
	n.gcPaused = false
	n.noisyActive = false
	n.stragglerMul = 1
	n.partitionDropMB = 0
	switch kind {
	case FaultPacketLoss:
		n.packetLoss = 0.5
	case FaultDiskHog:
		n.diskHogLeft = diskHogTotalMB
	}
	return nil
}

// Blacklist excludes a slave from all future task scheduling — the
// mitigation the ASDF action module drives once a node is fingerpointed
// (§5 of the paper: active mitigation). Pass exclude=false to reinstate.
func (c *Cluster) Blacklist(nodeIndex int, exclude bool) error {
	if nodeIndex < 0 || nodeIndex >= len(c.slaves) {
		return fmt.Errorf("hadoopsim: no slave %d (cluster has %d)", nodeIndex, len(c.slaves))
	}
	if exclude {
		c.jt.blacklisted[nodeIndex] = true
	} else {
		delete(c.jt.blacklisted, nodeIndex)
	}
	return nil
}

// Blacklisted reports whether a slave is excluded from scheduling.
func (c *Cluster) Blacklisted(nodeIndex int) bool {
	return c.jt.blacklisted[nodeIndex]
}

// BlacklistByName blacklists the slave with the given Name; it is the
// natural Env action for the ASDF action module, which identifies nodes by
// name.
func (c *Cluster) BlacklistByName(name string) error {
	for _, n := range c.slaves {
		if n.Name == name {
			return c.Blacklist(n.Index, true)
		}
	}
	return fmt.Errorf("hadoopsim: no slave named %q", name)
}

// FaultyNodes returns the indexes of slaves with an active fault.
func (c *Cluster) FaultyNodes() []int {
	var out []int
	for i, n := range c.slaves {
		if n.fault != FaultNone {
			out = append(out, i)
		}
	}
	return out
}

// FaultSince reports when the node's fault was injected; used by tests and
// the evaluation harness for ground truth.
func (n *Node) FaultSince() time.Time { return n.faultSince }

// FaultActive reports whether the injected fault is still perturbing the
// node. A DiskHog deactivates once its 20 GB are written; every other fault
// persists until cleared.
func (n *Node) FaultActive() bool {
	if n.fault == FaultNone {
		return false
	}
	if n.fault == FaultDiskHog {
		return n.diskHogLeft > 0
	}
	return true
}
