// Package asdf is the public API of ASDF, an automated, online framework
// for diagnosing performance problems in distributed systems (Bare et al.),
// reproduced as a Go library.
//
// ASDF localizes performance problems ("fingerpointing") while the system
// under diagnosis is running: pluggable data-collection modules feed
// time-varying data sources — OS performance counters, Hadoop logs — into
// pluggable analysis modules wired together as a DAG by a configuration
// file. The repository also contains a complete Hadoop cluster simulator
// substrate, the paper's black-box and white-box peer-comparison analyses,
// and an evaluation harness that regenerates every table and figure of the
// paper's evaluation.
//
// # Quick start
//
//	env := asdf.NewEnv()                    // register data sources here
//	reg := asdf.NewRegistry(env)            // all built-in modules
//	cfg, err := asdf.ParseConfigString(`
//	[sadc]
//	id = collector
//	node = myhost
//	period = 1
//
//	[print]
//	id = sink
//	only_nonzero = false
//	input[a] = collector.output0
//	`)
//	eng, err := asdf.NewEngine(reg, cfg)
//	err = eng.Run(ctx)                      // online, wall-clock mode
//
// See the examples directory for complete programs, including the paper's
// full two-pipeline Hadoop configuration over the simulator.
package asdf

import (
	"time"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/sadc"
	"github.com/asdf-project/asdf/internal/telemetry"
)

// Engine is an fpt-core instance: the module DAG plus its scheduler.
// Drive it with Tick/Flush (deterministic virtual time) or Run (wall
// clock).
type Engine = core.Engine

// EngineOption customizes engine construction.
type EngineOption = core.Option

// Module is the plug-in interface all data-collection and analysis modules
// implement.
type Module = core.Module

// Registry maps configuration section names to module factories.
type Registry = core.Registry

// InitContext and RunContext are passed to Module implementations.
type (
	InitContext = core.InitContext
	RunContext  = core.RunContext
)

// Sample is one timestamped data point on a DAG edge; Origin describes its
// provenance.
type (
	Sample = core.Sample
	Origin = core.Origin
)

// RunReason says why a module's Run was invoked.
type RunReason = core.RunReason

// Run reasons.
const (
	RunPeriodic = core.RunPeriodic
	RunInputs   = core.RunInputs
	RunFlush    = core.RunFlush
)

// InputPort and OutputPort are the ends of DAG edges.
type (
	InputPort  = core.InputPort
	OutputPort = core.OutputPort
)

// Config is a parsed fpt-core configuration file.
type Config = config.File

// Env supplies external resources (procfs providers, log buffers, alarm
// sinks) to the built-in modules.
type Env = modules.Env

// Model is a trained black-box model: log-scaling sigmas plus k-means
// workload-state centroids.
type Model = analysis.Model

// NewEnv returns an empty module environment.
func NewEnv() *Env { return modules.NewEnv() }

// NewRegistry returns a registry containing every built-in ASDF module
// (sadc, hadoop_log, mavgvec, knn, ibuffer, analysis_bb, analysis_wb,
// print, csv) bound to env. Custom modules can be added with Register.
func NewRegistry(env *Env) *Registry { return modules.NewRegistry(env) }

// NewBareRegistry returns an empty registry for fully custom module sets.
func NewBareRegistry() *Registry { return core.NewRegistry() }

// ParseConfig parses an fpt-core configuration file from disk.
func ParseConfig(path string) (*Config, error) { return config.ParseFile(path) }

// ParseConfigString parses fpt-core configuration text.
func ParseConfigString(text string) (*Config, error) { return config.ParseString(text) }

// NewEngine builds the module DAG from a parsed configuration, following
// the paper's unsatisfied-inputs construction; dangling references, missing
// modules, and dependency cycles are configuration errors.
func NewEngine(reg *Registry, cfg *Config, opts ...EngineOption) (*Engine, error) {
	return core.NewEngine(reg, cfg, opts...)
}

// WithErrorHandler sets the callback invoked when a module's Run fails; the
// default logs and keeps monitoring.
func WithErrorHandler(f func(instanceID string, err error)) EngineOption {
	return core.WithErrorHandler(f)
}

// WithLogger sets the engine's diagnostic logger.
func WithLogger(l core.Logger) EngineOption { return core.WithLogger(l) }

// WithParallelism sets the step-mode wavefront width: dirty instances at
// the same topological depth run on up to n concurrent goroutines, with
// sink output byte-identical to the serial schedule. n = 1 (the default)
// keeps the strictly serial scheduler; n <= 0 selects GOMAXPROCS.
func WithParallelism(n int) EngineOption { return core.WithParallelism(n) }

// Supervised-runtime types: structured failures, per-instance health
// snapshots, and the quarantine lifecycle (see internal/core/supervisor.go
// and DESIGN.md §5d).
type (
	InstanceError   = core.InstanceError
	InstanceHealth  = core.InstanceHealth
	FailureKind     = core.FailureKind
	SupervisorState = core.SupervisorState
	DegradePolicy   = core.DegradePolicy
)

// Failure kinds, supervisor states, and degrade policies.
const (
	FailureError   = core.FailureError
	FailurePanic   = core.FailurePanic
	FailureTimeout = core.FailureTimeout

	SupervisorHealthy     = core.SupervisorHealthy
	SupervisorQuarantined = core.SupervisorQuarantined
	SupervisorProbing     = core.SupervisorProbing

	DegradeSkip = core.DegradeSkip
	DegradeHold = core.DegradeHold
	DegradeZero = core.DegradeZero
	DegradeAuto = core.DegradeAuto
)

// WithWatchdog sets the default per-run watchdog deadline: a module Run
// exceeding it is abandoned (never double-run) and counted as a timeout
// failure. 0 disables the watchdog; the per-instance run_timeout parameter
// overrides it.
func WithWatchdog(d time.Duration) EngineOption { return core.WithWatchdog(d) }

// WithQuarantine sets the default failure budget: after threshold
// consecutive failures an instance is quarantined until a half-open probe
// after cooldown re-admits it. threshold 0 disables quarantine; the
// per-instance quarantine_threshold / quarantine_cooldown parameters
// override it.
func WithQuarantine(threshold int, cooldown time.Duration) EngineOption {
	return core.WithQuarantine(threshold, cooldown)
}

// WithDegrade sets the default gap-fill policy for quarantined instances'
// outputs; the per-instance degrade parameter overrides it.
func WithDegrade(p DegradePolicy) EngineOption { return core.WithDegrade(p) }

// WithDegradeResolver supplies the effective policy for instances whose
// degrade policy is DegradeAuto — typically an AdaptiveController's
// DegradePolicy method, so gap-fill tightens with the live open-breaker
// fraction. Nil (the default) makes auto behave as skip.
func WithDegradeResolver(f func() DegradePolicy) EngineOption {
	return core.WithDegradeResolver(f)
}

// ParseDegradePolicy parses "skip", "hold", "zero", or "auto" ("" = skip).
func ParseDegradePolicy(s string) (DegradePolicy, error) { return core.ParseDegradePolicy(s) }

// AdaptiveController derives the control node's degrade posture from the
// live open-breaker fraction of the collection plane, with hysteresis (see
// DESIGN.md §5i). Wire one instance into Env.Adaptive and the engine's
// WithDegradeResolver so degrade = auto and sync_quorum = auto resolve
// through the same controller.
type (
	AdaptiveController = modules.AdaptiveController
	AdaptiveConfig     = modules.AdaptiveConfig
)

// NewAdaptiveController builds an adaptive degradation controller;
// zero-value config fields take the documented defaults.
func NewAdaptiveController(cfg AdaptiveConfig) *AdaptiveController {
	return modules.NewAdaptiveController(cfg)
}

// StatusReport is the operator snapshot served by cmd/asdf's /status
// endpoint: supervisor, breaker, and sync state for one engine.
type StatusReport = modules.StatusReport

// MethodStatus is the RPC method serving a StatusReport on the address
// given by cmd/asdf -status-rpc-addr.
const MethodStatus = modules.MethodStatus

// CollectStatus assembles a StatusReport from a live engine.
func CollectStatus(eng *Engine, now time.Time) StatusReport {
	return modules.CollectStatus(eng, now)
}

// Telemetry is a metrics registry with Prometheus text exposition: pass one
// registry to WithTelemetry and Env.Metrics, then serve it with WriteTo (as
// cmd/asdf does on GET /metrics). See internal/telemetry and DESIGN.md §5e.
type Telemetry = telemetry.Registry

// NewTelemetry returns an empty metrics registry.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// WithTelemetry registers the engine's runtime metrics — per-instance run
// latency, tick/wavefront durations, queue depth, supervisor transition
// counters — on reg. Set Env.Metrics to the same registry to add the
// collection plane's RPC and timestamp-sync metrics.
func WithTelemetry(reg *Telemetry) EngineOption { return core.WithTelemetry(reg) }

// TrainModel fits a black-box model on fault-free raw metric vectors:
// log-scaling sigmas plus k centroids from k-means (§4.5 of the paper).
func TrainModel(points [][]float64, k int, seed int64) (*Model, error) {
	return analysis.TrainModel(points, k, seed)
}

// TrainValidatedModel fits the black-box model with model selection by the
// paper's criterion (§4.9): k-means is restarted several times and the
// candidate minimizing the fault-free peer-comparison score tail wins.
// series[second][node] is a raw metric vector; all nodes must be
// problem-free. Prefer this over TrainModel whenever per-node time series
// are available.
// Vectors must be full sadc node-metric vectors; the black-box metric
// selection is applied internally.
func TrainValidatedModel(series [][][]float64, k int, seed int64) (*Model, error) {
	indexes, err := sadc.NodeMetricIndexes(sadc.AnalysisMetricNames)
	if err != nil {
		return nil, err
	}
	return analysis.TrainValidatedModel(series, analysis.TrainOptions{
		K:             k,
		Seed:          seed,
		MetricIndexes: indexes,
		Perturb:       sadc.CPUHogPerturbation(),
	})
}

// LoadModel reads a model saved with Model.Save.
func LoadModel(path string) (*Model, error) { return analysis.LoadModel(path) }
