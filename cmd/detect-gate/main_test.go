package main

import (
	"strings"
	"testing"

	"github.com/asdf-project/asdf/internal/eval"
)

func testReport() *eval.DetectReport {
	return &eval.DetectReport{
		SchemaVersion: 1,
		Mode:          "reduced",
		Faults: []eval.DetectFaultSummary{
			{
				Fault:              "CPUHog",
				BalancedAccuracy:   map[string]float64{"combined": 0.79, "black-box": 0.75},
				TimeToDetectionSec: map[string]float64{"combined": 119, "black-box": 134},
			},
			{
				Fault:              "MemLeak",
				BalancedAccuracy:   map[string]float64{"combined": 0.5, "black-box": 0.5},
				TimeToDetectionSec: map[string]float64{"combined": -1, "black-box": -1},
			},
		},
	}
}

func testFloors() *Floors {
	return &Floors{
		MinBalancedAccuracy:   map[string]float64{"CPUHog": 0.74, "MemLeak": 0.45},
		MaxTimeToDetectionSec: map[string]float64{"CPUHog": 180, "MemLeak": 0},
	}
}

func TestEvaluatePasses(t *testing.T) {
	if failures := Evaluate(testReport(), testFloors()); len(failures) != 0 {
		t.Errorf("clean report failed the gate: %v", failures)
	}
}

func TestEvaluateCatchesAccuracyRegression(t *testing.T) {
	floors := testFloors()
	floors.MinBalancedAccuracy["CPUHog"] = 0.85
	failures := Evaluate(testReport(), floors)
	if len(failures) != 1 || !strings.Contains(failures[0], "balanced accuracy") {
		t.Errorf("accuracy regression not caught: %v", failures)
	}
}

func TestEvaluateCatchesLatencyRegression(t *testing.T) {
	floors := testFloors()
	floors.MaxTimeToDetectionSec["CPUHog"] = 90
	failures := Evaluate(testReport(), floors)
	if len(failures) != 1 || !strings.Contains(failures[0], "time-to-detection") {
		t.Errorf("latency regression not caught: %v", failures)
	}
}

func TestEvaluateCatchesLostDetection(t *testing.T) {
	// A fault with a finite ceiling that is no longer detected at all must
	// fail, not silently satisfy "no latency to compare".
	floors := testFloors()
	floors.MaxTimeToDetectionSec["MemLeak"] = 300
	failures := Evaluate(testReport(), floors)
	if len(failures) != 1 || !strings.Contains(failures[0], "never confidently detected") {
		t.Errorf("lost detection not caught: %v", failures)
	}
}

func TestEvaluateCatchesCoverageDrift(t *testing.T) {
	// Floor without a report row: the fault was dropped from the matrix.
	floors := testFloors()
	floors.MinBalancedAccuracy["Straggler"] = 0.7
	failures := Evaluate(testReport(), floors)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing from the report") {
		t.Errorf("dropped fault not caught: %v", failures)
	}

	// Report row without a floor: a new fault shipped ungated.
	floors = testFloors()
	delete(floors.MinBalancedAccuracy, "MemLeak")
	failures = Evaluate(testReport(), floors)
	if len(failures) != 1 || !strings.Contains(failures[0], "no balanced-accuracy floor") {
		t.Errorf("ungated fault not caught: %v", failures)
	}
}

func TestEvaluateNonDefaultApproach(t *testing.T) {
	floors := &Floors{
		Approach:              "black-box",
		MinBalancedAccuracy:   map[string]float64{"CPUHog": 0.74, "MemLeak": 0},
		MaxTimeToDetectionSec: map[string]float64{"CPUHog": 140},
	}
	if failures := Evaluate(testReport(), floors); len(failures) != 0 {
		t.Errorf("black-box gating failed: %v", failures)
	}
	floors.MaxTimeToDetectionSec["CPUHog"] = 120 // ours is 134
	if failures := Evaluate(testReport(), floors); len(failures) != 1 {
		t.Errorf("black-box latency regression not caught: %v", failures)
	}
}

func TestSelfcheck(t *testing.T) {
	if err := Selfcheck(testReport(), testFloors()); err != nil {
		t.Errorf("selfcheck on a consistent report: %v", err)
	}
}
