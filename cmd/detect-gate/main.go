// Command detect-gate holds a detection-quality report (BENCH_detect.json,
// written by asdf-bench -experiment detect) against the committed floors in
// .github/detect-floor.json. It is the CI detect-quality gate: a change
// that stops detecting a fault class, or detects it much later, fails here
// instead of shipping. JSON is parsed in Go — CI never shell-parses it.
//
// The floor file pins one approach (normally "combined") and, per fault,
// a minimum balanced accuracy and a maximum time-to-detection in seconds.
// A max of 0 or less waives the latency requirement — used for slow-burn
// faults the 60 s peer window cannot confidently detect at all, whose
// regression surface is then balanced accuracy alone.
//
// -selfcheck additionally proves the gate has teeth: it re-evaluates the
// same report against floors tightened past the measured scores and fails
// unless every tightened floor is reported as a violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/asdf-project/asdf/internal/eval"
)

// Floors is the committed gate configuration.
type Floors struct {
	// Approach selects which score column is gated ("combined" default).
	Approach string `json:"approach"`
	// MinBalancedAccuracy is the per-fault balanced-accuracy floor.
	MinBalancedAccuracy map[string]float64 `json:"min_balanced_accuracy"`
	// MaxTimeToDetectionSec is the per-fault detection-latency ceiling;
	// 0 or negative waives the requirement for that fault.
	MaxTimeToDetectionSec map[string]float64 `json:"max_time_to_detection_sec"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("detect-gate", flag.ContinueOnError)
	reportPath := fs.String("report", "BENCH_detect.json", "detection-quality report to gate")
	floorPath := fs.String("floor", ".github/detect-floor.json", "committed floor file")
	selfcheck := fs.Bool("selfcheck", false, "also prove tightened floors fail")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rep, floors, err := load(*reportPath, *floorPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detect-gate: %v\n", err)
		return 2
	}
	failures := Evaluate(rep, floors)
	for _, f := range failures {
		fmt.Printf("FAIL: %s\n", f)
	}
	if len(failures) > 0 {
		fmt.Printf("detect-gate: %d floor violation(s) against %s\n", len(failures), *floorPath)
		return 1
	}
	fmt.Printf("detect-gate: all %d fault floors hold (%s approach)\n",
		len(floors.MinBalancedAccuracy), floors.approach())

	if *selfcheck {
		if err := Selfcheck(rep, floors); err != nil {
			fmt.Fprintf(os.Stderr, "detect-gate: selfcheck: %v\n", err)
			return 1
		}
		fmt.Println("detect-gate: selfcheck ok (tightened floors fail as expected)")
	}
	return 0
}

func load(reportPath, floorPath string) (*eval.DetectReport, *Floors, error) {
	rf, err := os.Open(reportPath)
	if err != nil {
		return nil, nil, err
	}
	defer rf.Close()
	rep, err := eval.DecodeDetectReport(rf)
	if err != nil {
		return nil, nil, err
	}
	data, err := os.ReadFile(floorPath)
	if err != nil {
		return nil, nil, err
	}
	var floors Floors
	if err := json.Unmarshal(data, &floors); err != nil {
		return nil, nil, fmt.Errorf("parsing %s: %w", floorPath, err)
	}
	if len(floors.MinBalancedAccuracy) == 0 {
		return nil, nil, fmt.Errorf("%s defines no balanced-accuracy floors", floorPath)
	}
	return rep, &floors, nil
}

func (f *Floors) approach() string {
	if f.Approach == "" {
		return "combined"
	}
	return f.Approach
}

// Evaluate returns every floor violation, deterministically ordered.
// Beyond score regressions it also fails on coverage drift: a fault in the
// report without a floor (new fault shipped ungated) or a floor without a
// report row (fault silently dropped from the matrix).
func Evaluate(rep *eval.DetectReport, floors *Floors) []string {
	approach := floors.approach()
	var failures []string

	for _, s := range rep.Faults {
		if _, ok := floors.MinBalancedAccuracy[s.Fault]; !ok {
			failures = append(failures,
				fmt.Sprintf("fault %s is in the report but has no balanced-accuracy floor; add it to the floor file", s.Fault))
		}
	}

	names := make([]string, 0, len(floors.MinBalancedAccuracy))
	for name := range floors.MinBalancedAccuracy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		min := floors.MinBalancedAccuracy[name]
		sum := rep.FaultSummary(name)
		if sum == nil {
			failures = append(failures,
				fmt.Sprintf("fault %s has a floor but is missing from the report", name))
			continue
		}
		ba, ok := sum.BalancedAccuracy[approach]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("fault %s has no %s score in the report", name, approach))
			continue
		}
		if ba < min {
			failures = append(failures,
				fmt.Sprintf("fault %s: %s balanced accuracy %.4f below floor %.4f", name, approach, ba, min))
		}
		max, ok := floors.MaxTimeToDetectionSec[name]
		if !ok || max <= 0 {
			continue
		}
		ttd := sum.TimeToDetectionSec[approach]
		if ttd < 0 {
			failures = append(failures,
				fmt.Sprintf("fault %s: never confidently detected (%s), but floor requires detection within %.0f s", name, approach, max))
		} else if ttd > max {
			failures = append(failures,
				fmt.Sprintf("fault %s: %s time-to-detection %.0f s above ceiling %.0f s", name, approach, ttd, max))
		}
	}
	return failures
}

// Selfcheck proves the gate fails when floors are tightened past the
// measured scores: every fault's balanced-accuracy floor raised above its
// score must violate, as must every finite detection ceiling lowered below
// its measured latency.
func Selfcheck(rep *eval.DetectReport, floors *Floors) error {
	approach := floors.approach()
	for name := range floors.MinBalancedAccuracy {
		sum := rep.FaultSummary(name)
		if sum == nil {
			return fmt.Errorf("fault %s missing from report", name)
		}
		tightened := &Floors{
			Approach:            floors.Approach,
			MinBalancedAccuracy: map[string]float64{name: sum.BalancedAccuracy[approach] + 0.0001},
		}
		if len(Evaluate(rep, tightened)) == 0 {
			return fmt.Errorf("raising %s's balanced-accuracy floor above its score did not fail", name)
		}
		if ttd := sum.TimeToDetectionSec[approach]; ttd > 0 {
			tightened = &Floors{
				Approach:              floors.Approach,
				MinBalancedAccuracy:   map[string]float64{name: 0},
				MaxTimeToDetectionSec: map[string]float64{name: ttd - 1},
			}
			if len(Evaluate(rep, tightened)) == 0 {
				return fmt.Errorf("lowering %s's detection ceiling below its latency did not fail", name)
			}
		}
	}
	return nil
}
