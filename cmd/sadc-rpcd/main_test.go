package main

import (
	"testing"
)

func TestRunBadFlags(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"-pids", "notanumber"}); code != 2 {
		t.Errorf("bad pid exit = %d, want 2", code)
	}
}

func TestRunBadListenAddress(t *testing.T) {
	if code := run([]string{"-listen", "256.256.256.256:99999"}); code != 1 {
		t.Errorf("bad listen exit = %d, want 1", code)
	}
}
