// Command sadc-rpcd is the per-node black-box collection daemon (§3.5): it
// reads OS performance counters from /proc and serves rate-converted metric
// records to the ASDF control node over RPC.
//
// Usage:
//
//	sadc-rpcd -listen :7401 [-proc /proc] [-pids 1234,5678]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/procfs"
	"github.com/asdf-project/asdf/internal/rpc"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sadc-rpcd", flag.ContinueOnError)
	listen := fs.String("listen", ":7401", "address to serve RPC on")
	procRoot := fs.String("proc", "/proc", "procfs root to read")
	pids := fs.String("pids", "", "comma-separated pids for per-process metrics")
	injectRefuse := fs.Bool("inject-refuse", false, "fault drill: refuse all new connections")
	injectDelay := fs.Duration("inject-delay", 0, "fault drill: delay every response by this duration")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	provider := procfs.NewFS(*procRoot)
	for _, p := range strings.Split(*pids, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		pid, err := strconv.Atoi(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sadc-rpcd: bad pid %q: %v\n", p, err)
			return 2
		}
		provider.PIDs = append(provider.PIDs, pid)
	}

	srv := rpc.NewServer(modules.ServiceSadc)
	modules.RegisterSadcServer(srv, provider)
	if *injectRefuse || *injectDelay > 0 {
		srv.SetFaults(rpc.Faults{RefuseNew: *injectRefuse, Delay: *injectDelay})
		log.Printf("sadc-rpcd: FAULT DRILL active: refuse=%v delay=%v", *injectRefuse, *injectDelay)
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sadc-rpcd: %v\n", err)
		return 1
	}
	log.Printf("sadc-rpcd: serving %s metrics on %s", *procRoot, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "sadc-rpcd: shutdown: %v\n", err)
		return 1
	}
	return 0
}
