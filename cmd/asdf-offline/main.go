// Command asdf-offline post-processes traces recorded by ASDF's csv sink
// (§2.1: ASDF doubles as "a data-collection and data-logging engine" whose
// output can be analyzed offline). It re-runs the black-box and/or
// white-box analyses over the recorded data with any parameters and prints
// the fingerpointing verdicts.
//
// Usage:
//
//	asdf-offline -blackbox bb.csv -model model.json
//	asdf-offline -whitebox wb.csv -k 3 -window 60
//	asdf-offline -blackbox bb.csv -whitebox wb.csv -model model.json
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/eval"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("asdf-offline", flag.ContinueOnError)
	bbPath := fs.String("blackbox", "", "csv of raw sadc vectors (csv sink fed by sadc modules)")
	wbPath := fs.String("whitebox", "", "csv of Hadoop log state vectors (csv sink fed by hadoop_log modules)")
	modelPath := fs.String("model", "", "trained model JSON (required with -blackbox)")
	window := fs.Int("window", 60, "window size in samples")
	slide := fs.Int("slide", 15, "window slide in samples")
	threshold := fs.Float64("threshold", 55, "black-box L1 threshold")
	k := fs.Float64("k", 3, "white-box threshold factor")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *bbPath == "" && *wbPath == "" {
		fmt.Fprintln(os.Stderr, "asdf-offline: need -blackbox and/or -whitebox (see -h)")
		return 2
	}

	params := eval.AnalysisParams{
		WindowSize:  *window,
		WindowSlide: *slide,
		BBThreshold: *threshold,
		WBK:         *k,
	}

	if *bbPath != "" {
		if *modelPath == "" {
			fmt.Fprintln(os.Stderr, "asdf-offline: -blackbox requires -model")
			return 2
		}
		model, err := analysis.LoadModel(*modelPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asdf-offline: %v\n", err)
			return 1
		}
		params.NumStates = model.NumStates()
		alarms, err := eval.OfflineBlackBox(*bbPath, model, params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asdf-offline: %v\n", err)
			return 1
		}
		printAlarms("black-box", alarms)
	}
	if *wbPath != "" {
		alarms, err := eval.OfflineWhiteBox(*wbPath, params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asdf-offline: %v\n", err)
			return 1
		}
		printAlarms("white-box", alarms)
	}
	return 0
}

func printAlarms(kind string, alarms []eval.OfflineAlarm) {
	if len(alarms) == 0 {
		fmt.Printf("%s: no alarms\n", kind)
		return
	}
	perNode := make(map[string]int)
	for _, a := range alarms {
		fmt.Printf("%s ALARM %s node=%s score=%.1f\n",
			kind, a.Time.Format("2006-01-02 15:04:05"), a.Node, a.Score)
		perNode[a.Node]++
	}
	fmt.Printf("%s: %d alarms", kind, len(alarms))
	best, n := "", 0
	for node, c := range perNode {
		if c > n {
			best, n = node, c
		}
	}
	fmt.Printf("; most-flagged node: %s (%d windows)\n", best, n)
}
