package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunFlagValidation(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run(nil); code != 2 {
		t.Errorf("no inputs exit = %d, want 2", code)
	}
	if code := run([]string{"-blackbox", "x.csv"}); code != 2 {
		t.Errorf("blackbox without model exit = %d, want 2", code)
	}
	if code := run([]string{"-whitebox", "/nonexistent.csv"}); code != 1 {
		t.Errorf("missing csv exit = %d, want 1", code)
	}
	if code := run([]string{"-blackbox", "x.csv", "-model", "/nonexistent.json"}); code != 1 {
		t.Errorf("missing model exit = %d, want 1", code)
	}
}

func TestRunWhiteBoxOnSyntheticCSV(t *testing.T) {
	// A hand-built trace: four nodes, node d's ReduceStallSec diverges.
	dir := t.TempDir()
	path := filepath.Join(dir, "wb.csv")
	var b []byte
	b = append(b, []byte("time,node,source,output,values\n")...)
	base := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	for s := 0; s < 30; s++ {
		for _, node := range []string{"a", "b", "c", "d"} {
			stall := 0
			if node == "d" && s > 5 {
				stall = s * 10
			}
			line := fmt.Sprintf("%s,%s,hadoop_log_tasktracker,%s,1;1;1;0;0;0;%d;0\n",
				base.Add(time.Duration(s)*time.Second).Format("2006-01-02T15:04:05"), node, node, stall)
			b = append(b, []byte(line)...)
		}
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-whitebox", path, "-window", "10", "-slide", "5", "-k", "3"}); code != 0 {
		t.Errorf("whitebox run exit = %d, want 0", code)
	}
}
