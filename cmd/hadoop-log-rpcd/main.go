// Command hadoop-log-rpcd is the per-node white-box collection daemon
// (§4.4): it tails the node's natively generated Hadoop TaskTracker and
// DataNode logs, parses them into per-second state vectors, and serves the
// vectors to the ASDF control node over RPC.
//
// Usage:
//
//	hadoop-log-rpcd -listen :7402 -tasktracker-log tt.log -datanode-log dn.log
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/rpc"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hadoop-log-rpcd", flag.ContinueOnError)
	listen := fs.String("listen", ":7402", "address to serve RPC on")
	ttPath := fs.String("tasktracker-log", "", "path to the TaskTracker log file")
	dnPath := fs.String("datanode-log", "", "path to the DataNode log file")
	poll := fs.Duration("poll", 500*time.Millisecond, "log tail poll interval")
	fromEnd := fs.Bool("from-end", false,
		"start tailing at the current end of each log instead of replaying it; "+
			"avoids re-parsing a large log after a daemon restart, but any lines "+
			"written while the daemon was down are never served (a gap the control "+
			"node's timestamp sync resolves by deadline/quorum, if configured)")
	injectRefuse := fs.Bool("inject-refuse", false, "fault drill: refuse all new connections")
	injectDelay := fs.Duration("inject-delay", 0, "fault drill: delay every response by this duration")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ttPath == "" && *dnPath == "" {
		fmt.Fprintln(os.Stderr, "hadoop-log-rpcd: need -tasktracker-log and/or -datanode-log")
		return 2
	}

	ttBuf := hadooplog.NewBuffer(0)
	dnBuf := hadooplog.NewBuffer(0)
	tailOpt := hadooplog.TailOptions{Poll: *poll, FromEnd: *fromEnd}
	var tails []*hadooplog.Tailer
	if *ttPath != "" {
		tails = append(tails, hadooplog.NewTailerOpts(*ttPath, ttBuf, tailOpt))
	}
	if *dnPath != "" {
		tails = append(tails, hadooplog.NewTailerOpts(*dnPath, dnBuf, tailOpt))
	}

	srv := rpc.NewServer(modules.ServiceHadoopLog)
	modules.RegisterHadoopLogServer(srv, ttBuf, dnBuf, time.Now)
	if *injectRefuse || *injectDelay > 0 {
		srv.SetFaults(rpc.Faults{RefuseNew: *injectRefuse, Delay: *injectDelay})
		log.Printf("hadoop-log-rpcd: FAULT DRILL active: refuse=%v delay=%v", *injectRefuse, *injectDelay)
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hadoop-log-rpcd: %v\n", err)
		return 1
	}
	log.Printf("hadoop-log-rpcd: serving on %s (tt=%q dn=%q)", addr, *ttPath, *dnPath)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	for _, tl := range tails {
		tl.Stop()
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "hadoop-log-rpcd: shutdown: %v\n", err)
		return 1
	}
	return 0
}
