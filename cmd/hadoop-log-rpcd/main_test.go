package main

import "testing"

func TestRunFlagValidation(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run(nil); code != 2 {
		t.Errorf("no logs exit = %d, want 2", code)
	}
	if code := run([]string{"-tasktracker-log", "tt.log", "-listen", "256.256.256.256:99999"}); code != 1 {
		t.Errorf("bad listen exit = %d, want 1", code)
	}
}
