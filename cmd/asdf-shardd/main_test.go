package main

import "testing"

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-nonsense"}); code != 2 {
		t.Errorf("exit with bad flag = %d, want 2", code)
	}
}

func TestRunMissingNodes(t *testing.T) {
	if code := run([]string{"-listen", "127.0.0.1:0"}); code != 2 {
		t.Errorf("exit without -nodes = %d, want 2", code)
	}
}

func TestRunBadHlogKind(t *testing.T) {
	if code := run([]string{"-nodes", "n0", "-hlog-kind", "jobtracker"}); code != 2 {
		t.Errorf("exit with bad -hlog-kind = %d, want 2", code)
	}
}

func TestRunMismatchedAddrs(t *testing.T) {
	// Two nodes but only one daemon address: NewLeader must reject it.
	if code := run([]string{"-nodes", "n0,n1", "-sadc-addrs", "127.0.0.1:1"}); code != 2 {
		t.Errorf("exit with mismatched -sadc-addrs = %d, want 2", code)
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, ,b ,")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("splitList = %v, want [a b]", got)
	}
}
