// Command asdf-shardd is the shard-leader of the hierarchical collection
// plane: it owns the managed daemon connections, shard sweeps, and wire
// negotiation for one contiguous node range, and serves merged per-tick
// partials to the root asdf process (hierarchy JSON sweeps plus their
// columnar stream counterparts). The root's sadc / hadoop_log instances
// delegate ranges to leaders with the leaders / leader_ranges parameters.
//
// Sweeps are pull-driven — one sweep per root request — so the root's tick
// clock paces the whole tree and sink output stays byte-identical to the
// single-process configuration.
//
// Usage:
//
//	asdf-shardd -listen :7411 -nodes node0,node1 -sadc-addrs :7401,:7402
//	asdf-shardd -listen :7412 -nodes node2,node3 -hlog-addrs :7501,:7502 -hlog-kind tasktracker
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/hadooplog"
	"github.com/asdf-project/asdf/internal/hierarchy"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/state"
	"github.com/asdf-project/asdf/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("asdf-shardd", flag.ContinueOnError)
	listen := fs.String("listen", ":7411", "address to serve the leader RPC on")
	name := fs.String("name", "leader", "leader name in status output and stream schemas")
	nodes := fs.String("nodes", "", "comma-separated node names of the delegated range, in the root's order (required)")
	sadcAddrs := fs.String("sadc-addrs", "", "comma-separated sadc-rpcd daemon addresses, parallel to -nodes")
	hlogAddrs := fs.String("hlog-addrs", "", "comma-separated hadoop-log-rpcd daemon addresses, parallel to -nodes")
	hlogKind := fs.String("hlog-kind", "tasktracker", "hadoop_log daemon kind: tasktracker or datanode")
	fanout := fs.Int("fanout", 0, "concurrent daemon-fetch budget per sweep (0 = serial)")
	shards := fs.Int("shards", 0, "shard-worker count over the leader's range (0 = single shard)")
	shardFanout := fs.Int("shard-fanout", 0, "per-shard concurrent-fetch budget (0 = the -fanout budget)")
	batch := fs.Bool("batch", false, "fetch all sadc metric groups in one batched RPC per node")
	wire := fs.String("wire", "", "leader→daemon wire format: json or columnar (delta-encoded streams with per-node JSON fallback)")
	callTimeout := fs.Duration("call-timeout", 0, "per-RPC deadline for collection daemons (0 = default 10s)")
	reconnectBackoff := fs.Duration("reconnect-backoff", 0, "initial reconnect backoff to a dead daemon (0 = default 100ms)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive failures before a daemon's circuit breaker opens (0 = default 5)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "open-breaker wait before a half-open probe (0 = default 2s)")
	stateFile := fs.String("state-file", "", "persist daemon breaker state to this file and restore it on restart")
	stateInterval := fs.Duration("state-interval", 5*time.Second, "interval between state snapshots (with -state-file)")
	probeBudget := fs.Int("probe-budget", 4, "restored open breakers re-probed per probe interval after a restart (with -state-file)")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "stagger interval for restored-breaker re-probes after a restart (with -state-file)")
	statusAddr := fs.String("status-addr", "", "serve the leader health endpoint (GET /healthz, /status, /metrics) on this address")
	injectRefuse := fs.Bool("inject-refuse", false, "fault drill: refuse all new root connections")
	injectDelay := fs.Duration("inject-delay", 0, "fault drill: delay every response by this duration")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	nodeList := splitList(*nodes)
	if len(nodeList) == 0 {
		fmt.Fprintln(os.Stderr, "asdf-shardd: -nodes is required (see -h)")
		return 2
	}
	var kind hadooplog.Kind
	switch *hlogKind {
	case "tasktracker":
		kind = hadooplog.KindTaskTracker
	case "datanode":
		kind = hadooplog.KindDataNode
	default:
		fmt.Fprintf(os.Stderr, "asdf-shardd: unknown -hlog-kind %q (want tasktracker or datanode)\n", *hlogKind)
		return 2
	}

	metrics := telemetry.NewRegistry()
	env := modules.NewEnv()
	env.Metrics = metrics
	env.RPCOptions.CallTimeout = *callTimeout
	env.RPCOptions.ReconnectBackoff = *reconnectBackoff
	env.RPCOptions.BreakerThreshold = *breakerThreshold
	env.RPCOptions.BreakerCooldown = *breakerCooldown
	env.RPCOptions.Clock = time.Now

	leader, err := modules.NewLeader(env, modules.LeaderOptions{
		Name:      *name,
		Nodes:     nodeList,
		SadcAddrs: splitList(*sadcAddrs),
		LogAddrs:  splitList(*hlogAddrs),
		LogKind:   kind,
		Fanout:    *fanout,
		Shards:    config.ShardParams{Shards: *shards, ShardFanout: *shardFanout},
		Batch:     *batch,
		Wire:      *wire,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdf-shardd: %v\n", err)
		return 2
	}

	// -state-file makes the leader crash-safe the same way it makes the
	// root: daemon breaker state is snapshotted and restored, so a restarted
	// leader staggers re-probes of known-dead daemons instead of hammering
	// them on its first sweep.
	var mgr *state.Manager
	if *stateFile != "" {
		mgr, err = state.Open(leader, state.Options{
			Path:          *stateFile,
			Interval:      *stateInterval,
			Logf:          log.Printf,
			Metrics:       metrics,
			ProbeBudget:   *probeBudget,
			ProbeInterval: *probeInterval,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "asdf-shardd: state: %v\n", err)
			return 1
		}
		defer func() { _ = mgr.Close() }()
		if st := mgr.Status(); st.Restarts > 0 {
			log.Printf("asdf-shardd: restart #%d: restored %d breakers from %s",
				st.Restarts, st.RestoredBreakers, st.Path)
		}
	}

	srv := rpc.NewServer(hierarchy.ServiceLeader)
	leader.Register(srv)
	if *injectRefuse || *injectDelay > 0 {
		srv.SetFaults(rpc.Faults{RefuseNew: *injectRefuse, Delay: *injectDelay})
		log.Printf("asdf-shardd: FAULT DRILL active: refuse=%v delay=%v", *injectRefuse, *injectDelay)
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdf-shardd: %v\n", err)
		return 1
	}
	log.Printf("asdf-shardd: %s serving %d-node range on %s", *name, len(nodeList), addr)

	if *statusAddr != "" {
		httpSrv, saddr, err := serveStatusHTTP(*statusAddr, leader, mgr, metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asdf-shardd: status endpoint: %v\n", err)
			return 1
		}
		defer func() { _ = httpSrv.Close() }()
		log.Printf("asdf-shardd: status endpoint on http://%s/status", saddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if mgr != nil {
		go mgr.Run(ctx)
	}
	<-ctx.Done()
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "asdf-shardd: shutdown: %v\n", err)
		return 1
	}
	return 0
}

// splitList parses a comma-separated flag value, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

// leaderStatus is the leader's /status document: its sweep accounting plus
// the per-plane daemon breaker health and shard accounting a root operator
// would otherwise lose sight of behind the delegation boundary.
type leaderStatus struct {
	hierarchy.StatusResponse
	Healthy  bool                             `json:"healthy"`
	Breakers map[string]map[string]rpc.Health `json:"breakers,omitempty"`
	Shards   map[string][]modules.ShardStatus `json:"shards,omitempty"`
	Restart  *state.RestartStatus             `json:"restart,omitempty"`
}

func collectLeaderStatus(l *modules.Leader, mgr *state.Manager) leaderStatus {
	st := leaderStatus{StatusResponse: l.Status(), Healthy: true}
	for _, id := range l.Instances() {
		mod, ok := l.ModuleOf(id)
		if !ok {
			continue
		}
		if br, ok := mod.(modules.BreakerReporter); ok {
			if hs := br.ClientHealths(); len(hs) > 0 {
				if st.Breakers == nil {
					st.Breakers = make(map[string]map[string]rpc.Health)
				}
				st.Breakers[id] = hs
				for _, h := range hs {
					if h.State == rpc.BreakerOpen {
						st.Healthy = false
					}
				}
			}
		}
		if shr, ok := mod.(modules.ShardReporter); ok {
			if sts := shr.ShardStatuses(); len(sts) > 0 {
				if st.Shards == nil {
					st.Shards = make(map[string][]modules.ShardStatus)
				}
				st.Shards[id] = sts
			}
		}
	}
	if mgr != nil {
		rs := mgr.Status()
		st.Restart = &rs
	}
	return st
}

// serveStatusHTTP starts the leader health endpoint on addr: GET /healthz
// answers 200 "ok" while no daemon breaker is open, 503 "degraded"
// otherwise; GET /status returns the JSON snapshot; GET /metrics serves the
// telemetry registry in Prometheus text format.
func serveStatusHTTP(addr string, l *modules.Leader, mgr *state.Manager, metrics *telemetry.Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := collectLeaderStatus(l, mgr)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if st.Healthy {
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "degraded")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := metrics.WriteTo(w); err != nil {
			log.Printf("asdf-shardd: metrics write: %v", err)
		}
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		st := collectLeaderStatus(l, mgr)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			log.Printf("asdf-shardd: status encode: %v", err)
		}
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("asdf-shardd: status endpoint: %v", err)
		}
	}()
	return srv, ln.Addr(), nil
}
