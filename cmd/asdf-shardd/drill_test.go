//go:build unix

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/procfs"
	"github.com/asdf-project/asdf/internal/rpc"
)

// This file is the multi-process hierarchy drill: a root asdf process and
// two asdf-shardd leaders run as real child processes against in-test sadc
// daemons, one leader is SIGKILLed mid-run and restarted on the same
// address, and the root's CSV output is checked for gap-fill rows, per-key
// timestamp monotonicity, and full recovery. The CI hierarchy-drill job runs
// it under -race with ASDF_DRILL_RACE=1 (so the children are raced too) and
// uploads the ASDF_FAULT_TRACE / ASDF_METRICS_DUMP artifacts.

// drillProvider is a thread-safe synthetic procfs provider: each Snapshot
// advances the counters by one synthetic second of steady load, so the
// collectors behind the daemon RPC boundary produce non-trivial rates
// without touching the host's real /proc.
type drillProvider struct {
	mu sync.Mutex
	n  uint64
}

func (p *drillProvider) Snapshot() (*procfs.Snapshot, error) {
	p.mu.Lock()
	n := p.n
	p.n++
	p.mu.Unlock()
	return &procfs.Snapshot{
		Time:   time.Now(),
		Uptime: 1000 + float64(n),
		Stat: procfs.Stat{
			CPUTotal: procfs.CPUStat{
				User: 1000 + 50*n, Nice: 10, System: 500 + 20*n,
				Idle: 8000 + 25*n, IOWait: 100 + 5*n,
			},
			PerCPU:          []procfs.CPUStat{{}, {}},
			ContextSwitches: 100000 + 3000*n,
			Interrupts:      50000 + 1500*n,
			Processes:       2000 + 10*n,
			ProcsRunning:    2,
		},
		Mem: procfs.Meminfo{
			MemTotal: 7864320, MemFree: 3932160, Buffers: 100000, Cached: 500000,
			SwapTotal: 1000000, SwapFree: 900000, Active: 200000, Inactive: 100000,
			Dirty: 2048, CommittedAS: 4000000,
		},
		VM: procfs.VMStat{
			PgpgIn: 1000 + 400*n, PgpgOut: 2000, PgFault: 50000 + 250*n, PgMajFault: 10,
		},
		Load: procfs.LoadAvg{Load1: 1.5, Load5: 1.0, Load15: 0.5, Running: 2, Total: 150},
		Disks: []procfs.DiskStat{{
			Name: "sda", ReadsCompleted: 1000 + 10*n, WritesCompleted: 2000 + 20*n,
			SectorsRead: 80000 + 800*n, SectorsWritten: 160000 + 1600*n,
			IOTimeMs: 5000 + 50*n, WeightedIOMs: 7000 + 70*n,
		}},
		Nets: []procfs.NetDevStat{{
			Iface: "eth0", RxBytes: 1<<20 + 4096*n, TxBytes: 2<<20 + 8192*n,
			RxPackets: 10000 + 40*n, TxPackets: 20000 + 80*n,
		}},
		Procs: []procfs.PIDStat{{
			PID: 42, Comm: "java", State: 'R', UTime: 500 + 5*n, STime: 100 + 2*n,
			NumThreads: 30, StartTime: 100, VSizeBytes: 1 << 30, RSSPages: 50000,
			MinFlt: 1000 + 10*n, MajFlt: 5, ReadBytes: 1 << 20, WriteBytes: 2 << 20,
		}},
	}, nil
}

// buildDrillBinaries compiles asdf and asdf-shardd into dir. With
// ASDF_DRILL_RACE=1 the children are built with -race, so the drill
// exercises the full tree under the race detector (the CI job sets it; a
// plain `go test ./...` run skips the extra instrumentation cost).
func buildDrillBinaries(t *testing.T, dir string) (asdfBin, sharddBin string) {
	t.Helper()
	asdfBin = filepath.Join(dir, "asdf")
	sharddBin = filepath.Join(dir, "asdf-shardd")
	args := []string{"build"}
	if os.Getenv("ASDF_DRILL_RACE") == "1" {
		args = append(args, "-race")
	}
	for bin, pkg := range map[string]string{
		asdfBin:   "github.com/asdf-project/asdf/cmd/asdf",
		sharddBin: "github.com/asdf-project/asdf/cmd/asdf-shardd",
	} {
		cmd := exec.Command("go", append(args, "-o", bin, pkg)...)
		cmd.Dir = findModuleRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return asdfBin, sharddBin
}

func findModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test working directory")
		}
		dir = parent
	}
}

// reserveAddr grabs a free loopback port and releases it, so a child
// process (and, for the killed leader, its replacement) can listen on a
// known address the root's configuration already names.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// startProc launches a child with stdout/stderr appended to logPath and
// registers a cleanup kill. The returned process is already started.
func startProc(t *testing.T, logPath, bin string, args ...string) *exec.Cmd {
	t.Helper()
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = f
	cmd.Stderr = f
	if err := cmd.Start(); err != nil {
		_ = f.Close()
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		_ = f.Close()
	})
	return cmd
}

func waitTCP(t *testing.T, addr string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err == nil {
			_ = c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s did not start listening within %s", addr, timeout)
}

// drillStatus is the slice of the root's /status document the drill reads.
type drillStatus struct {
	Healthy   bool `json:"healthy"`
	Instances []struct {
		ID       string `json:"id"`
		State    string `json:"state"`
		GapFills uint64 `json:"gap_fills"`
	} `json:"instances"`
	Leaders map[string][]modules.LeaderStatus `json:"leaders"`
}

// gapFills returns the named instance's gap-fill counter, 0 if absent.
func (st drillStatus) gapFills(id string) uint64 {
	for _, in := range st.Instances {
		if in.ID == id {
			return in.GapFills
		}
	}
	return 0
}

// leader returns the instance's LeaderStatus for addr, nil if absent.
func (st drillStatus) leader(id, addr string) *modules.LeaderStatus {
	for i := range st.Leaders[id] {
		if st.Leaders[id][i].Addr == addr {
			return &st.Leaders[id][i]
		}
	}
	return nil
}

func fetchStatus(statusAddr string) (drillStatus, error) {
	var st drillStatus
	resp, err := http.Get("http://" + statusAddr + "/status")
	if err != nil {
		return st, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("GET /status: %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// waitStatus polls the root's /status until cond accepts a snapshot.
func waitStatus(t *testing.T, statusAddr, desc string, timeout time.Duration, cond func(drillStatus) bool) drillStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last drillStatus
	var lastErr error
	for time.Now().Before(deadline) {
		st, err := fetchStatus(statusAddr)
		if err == nil {
			last = st
			if cond(st) {
				return st
			}
		}
		lastErr = err
		time.Sleep(200 * time.Millisecond)
	}
	buf, _ := json.Marshal(last)
	t.Fatalf("timed out after %s waiting for %s (last error: %v, last status: %s)",
		timeout, desc, lastErr, buf)
	return drillStatus{}
}

// metricTotal sums every sample of a counter family in Prometheus
// exposition text, across label sets.
func metricTotal(text, name string) float64 {
	var total float64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) > 0 && rest[0] == '{' {
			if i := strings.IndexByte(rest, '}'); i >= 0 {
				rest = rest[i+1:]
			}
		}
		rest = strings.TrimSpace(rest)
		if rest == "" || strings.HasPrefix(rest, "_") { // longer family name
			continue
		}
		if v, err := strconv.ParseFloat(strings.Fields(rest)[0], 64); err == nil {
			total += v
		}
	}
	return total
}

// TestHierarchyDrill is the end-to-end kill/recover drill. Timeline:
//
//  1. Four in-test sadc daemons serve synthetic /proc snapshots; two
//     asdf-shardd leaders (2 nodes each) and a root asdf with wire=columnar,
//     period=1s, -degrade hold start as child processes.
//  2. Once both leaders have merged partials, leader0 is SIGKILLed. The
//     root's collector degrades like a node failure: errors, quarantine,
//     gap-fill rows marked ";degraded".
//  3. Leader0 restarts on the same address; the root reconnects, counts a
//     leader restart, and clean rows resume for every node.
//  4. The root exits on SIGTERM (flushing its CSV); the trace must show
//     degraded rows, per-key strictly increasing timestamps, and a clean
//     final row for all four nodes.
func TestHierarchyDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process drill takes ~30s of wall clock")
	}
	dir := t.TempDir()
	asdfBin, sharddBin := buildDrillBinaries(t, dir)
	trace := drillTrace(t)

	// In-test daemons: one RPC server per node, each with its own provider.
	names := []string{"n0", "n1", "n2", "n3"}
	daemonAddrs := make([]string, len(names))
	for i := range names {
		srv := rpc.NewServer(modules.ServiceSadc)
		modules.RegisterSadcServer(srv, &drillProvider{})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		daemonAddrs[i] = addr.String()
	}

	leader0Addr := reserveAddr(t)
	leader1Addr := reserveAddr(t)
	statusAddr := reserveAddr(t)

	leaderArgs := func(listen string, lo int) []string {
		return []string{
			"-listen", listen,
			"-name", "leader" + strconv.Itoa(lo/2),
			"-nodes", strings.Join(names[lo:lo+2], ","),
			"-sadc-addrs", strings.Join(daemonAddrs[lo:lo+2], ","),
			"-fanout", "2",
			"-call-timeout", "2s",
			"-breaker-threshold", "2",
			"-breaker-cooldown", "1s",
			"-reconnect-backoff", "100ms",
		}
	}
	leader0 := startProc(t, filepath.Join(dir, "leader0.log"), sharddBin, leaderArgs(leader0Addr, 0)...)
	startProc(t, filepath.Join(dir, "leader1.log"), sharddBin, leaderArgs(leader1Addr, 2)...)
	waitTCP(t, leader0Addr, 10*time.Second)
	waitTCP(t, leader1Addr, 10*time.Second)
	fmt.Fprintf(trace, "leaders up: %s %s\n", leader0Addr, leader1Addr)

	// Root: every node delegated, columnar hop, 1s period (CSV timestamps
	// have second resolution, so one row per key per second keeps the
	// strict-monotonicity assertion meaningful).
	csvPath := filepath.Join(dir, "out.csv")
	var cfg strings.Builder
	fmt.Fprintf(&cfg, "[sadc]\nid = cluster\nnodes = %s\nmode = rpc\naddrs = -,-,-,-\nperiod = 1\nwire = columnar\n",
		strings.Join(names, ","))
	fmt.Fprintf(&cfg, "leaders = %s,%s\nleader_ranges = 0-2,2-4\n\n", leader0Addr, leader1Addr)
	fmt.Fprintf(&cfg, "[csv]\nid = log\npath = %s\n", csvPath)
	for i, n := range names {
		fmt.Fprintf(&cfg, "input[m%d] = cluster.%s\n", i, n)
	}
	cfgPath := filepath.Join(dir, "drill.conf")
	if err := os.WriteFile(cfgPath, []byte(cfg.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	root := startProc(t, filepath.Join(dir, "root.log"), asdfBin,
		"-config", cfgPath,
		"-status-addr", statusAddr,
		"-call-timeout", "2s",
		"-reconnect-backoff", "100ms",
		"-breaker-threshold", "2",
		"-breaker-cooldown", "1s",
		"-quarantine-threshold", "2",
		"-quarantine-cooldown", "2s",
		"-degrade", "hold",
	)

	// Phase 1: healthy hierarchy — both leaders connected and merging.
	waitStatus(t, statusAddr, "both leaders merging partials", 30*time.Second, func(st drillStatus) bool {
		ls := st.Leaders["cluster"]
		if len(ls) != 2 {
			return false
		}
		for _, l := range ls {
			if l.Partials < 3 {
				return false
			}
		}
		return st.Healthy
	})
	fmt.Fprintf(trace, "phase 1: hierarchy healthy, partials flowing\n")

	// Phase 2: kill leader0 outright; the root must degrade, not wedge.
	if err := root.Process.Signal(syscall.Signal(0)); err != nil {
		t.Fatalf("root died before the kill: %v", err)
	}
	if err := leader0.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = leader0.Process.Wait()
	fmt.Fprintf(trace, "phase 2: SIGKILL leader0 (%s)\n", leader0Addr)
	killed := waitStatus(t, statusAddr, "gap-fill after leader0 kill", 30*time.Second, func(st drillStatus) bool {
		return st.gapFills("cluster") > 0
	})
	fmt.Fprintf(trace, "phase 2: root degraded (gap_fills=%d)\n", killed.gapFills("cluster"))

	// Phase 3: restart leader0 on the same address and wait for recovery:
	// connection re-established, restart counted, partials flowing again,
	// collector readmitted.
	startProc(t, filepath.Join(dir, "leader0.log"), sharddBin, leaderArgs(leader0Addr, 0)...)
	waitTCP(t, leader0Addr, 10*time.Second)
	fmt.Fprintf(trace, "phase 3: leader0 restarted on %s\n", leader0Addr)
	atKill := killed.leader("cluster", leader0Addr)
	if atKill == nil {
		t.Fatalf("leader %s missing from /status at kill time", leader0Addr)
	}
	recovered := waitStatus(t, statusAddr, "recovery after leader0 restart", 45*time.Second, func(st drillStatus) bool {
		l0 := st.leader("cluster", leader0Addr)
		if l0 == nil || l0.Restarts < 1 || l0.Health == nil || !l0.Health.Connected {
			return false
		}
		return st.Healthy && l0.Partials > atKill.Partials+2
	})
	l0 := recovered.leader("cluster", leader0Addr)
	fmt.Fprintf(trace, "phase 3: recovered (leader0 restarts=%d partials=%d)\n",
		l0.Restarts, l0.Partials)

	// Let a few clean post-recovery ticks land, then scrape the hierarchy
	// metrics before shutting down.
	time.Sleep(3 * time.Second)
	metrics := scrapeMetrics(t, statusAddr)
	if got := metricTotal(metrics, "asdf_hier_partials_total"); got <= 0 {
		t.Errorf("asdf_hier_partials_total = %v, want > 0", got)
	}
	if got := metricTotal(metrics, "asdf_hier_leader_restarts_total"); got < 1 {
		t.Errorf("asdf_hier_leader_restarts_total = %v, want >= 1", got)
	}

	// Graceful shutdown flushes the CSV sink.
	if err := root.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := root.Wait(); err != nil {
		logs, _ := os.ReadFile(filepath.Join(dir, "root.log"))
		t.Fatalf("root exit: %v\n%s", err, logs)
	}
	fmt.Fprintf(trace, "phase 4: root exited cleanly\n")

	assertDrillCSV(t, csvPath, names)
}

// assertDrillCSV checks the flushed trace: presence of gap-fill rows,
// strictly increasing per-key timestamps (no duplicate or rewound rows from
// the leader outage), and a clean final row for every node.
func assertDrillCSV(t *testing.T, csvPath string, names []string) {
	t.Helper()
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 || lines[0] != "time,node,source,output,values" {
		t.Fatalf("unexpected CSV shape (%d lines, header %q)", len(lines), lines[0])
	}
	type keyState struct {
		last         time.Time
		lastDegraded bool
	}
	perKey := make(map[string]*keyState)
	degraded := 0
	for _, line := range lines[1:] {
		f := strings.SplitN(line, ",", 5)
		if len(f) != 5 {
			t.Fatalf("malformed CSV row %q", line)
		}
		ts, err := time.Parse("2006-01-02T15:04:05", f[0])
		if err != nil {
			t.Fatalf("bad timestamp in row %q: %v", line, err)
		}
		key := f[1] + "/" + f[2] + "/" + f[3]
		st := perKey[key]
		if st == nil {
			st = &keyState{}
			perKey[key] = st
		} else if !ts.After(st.last) {
			t.Errorf("key %s: timestamp %s does not advance past %s",
				key, f[0], st.last.Format("2006-01-02T15:04:05"))
		}
		st.last = ts
		st.lastDegraded = strings.HasSuffix(f[4], ";degraded")
		if st.lastDegraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Error("no ;degraded gap-fill rows despite the leader outage")
	}
	for _, n := range names {
		st := perKey[n+"/sadc/"+n]
		if st == nil {
			t.Errorf("node %s has no CSV rows", n)
			continue
		}
		if st.lastDegraded {
			t.Errorf("node %s: final row still degraded — no recovery", n)
		}
	}
}

// drillTrace returns the shared fault-trace writer named by
// ASDF_FAULT_TRACE (the CI hierarchy-drill job uploads it as an artifact),
// or io.Discard when unset.
func drillTrace(t *testing.T) io.Writer {
	t.Helper()
	path := os.Getenv("ASDF_FAULT_TRACE")
	if path == "" {
		return io.Discard
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open fault trace %s: %v", path, err)
	}
	t.Cleanup(func() { _ = f.Close() })
	fmt.Fprintf(f, "=== %s\n", t.Name())
	return f
}

// scrapeMetrics fetches the root's Prometheus exposition text and, when
// ASDF_METRICS_DUMP names a directory, writes it there as <TestName>.txt.
func scrapeMetrics(t *testing.T, statusAddr string) string {
	t.Helper()
	resp, err := http.Get("http://" + statusAddr + "/metrics")
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	if dir := os.Getenv("ASDF_METRICS_DUMP"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatalf("ASDF_METRICS_DUMP: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dir, t.Name()+".txt"), buf, 0o644); err != nil {
			t.Fatalf("ASDF_METRICS_DUMP: %v", err)
		}
	}
	return string(buf)
}
