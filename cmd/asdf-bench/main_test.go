package main

import "testing"

func TestRunUnknownExperiment(t *testing.T) {
	if code := run([]string{"-experiment", "nonsense"}); code != 2 {
		t.Errorf("unknown experiment exit = %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}

func TestRunTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement test")
	}
	if code := run([]string{"-experiment", "table4"}); code != 0 {
		t.Errorf("table4 exit = %d, want 0", code)
	}
}
