// Command asdf-bench regenerates every table and figure of the paper's
// evaluation against the simulated cluster substrate and prints
// paper-vs-measured comparisons. Absolute numbers differ (the substrate is
// a simulator, not the authors' EC2 testbed); the shapes — who wins, where
// the knees fall, which faults are slow to localize — are the reproduction
// targets.
//
// Usage:
//
//	asdf-bench -experiment all
//	asdf-bench -experiment fig7a -slaves 16 -duration 2400
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/eval"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("asdf-bench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "table3 | table4 | fig6a | fig6b | fig7a | fig7b | ablation | workload | shardscale | analysisscale | hier | wire | detect | all")
	slaves := fs.Int("slaves", 0, "cluster size (0 = default)")
	seed := fs.Int64("seed", 0, "base seed (0 = default)")
	duration := fs.Int("duration", 0, "fault-run seconds (0 = default)")
	csvOut := fs.String("csv", "", "directory to also write each exhibit's data as CSV (for plotting)")
	shardJSON := fs.String("shard-json", "BENCH_shard.json", "output path for the shardscale experiment's JSON result")
	hierJSON := fs.String("hier-json", "BENCH_hier.json", "output path for the hier experiment's JSON result")
	analysisJSON := fs.String("analysis-json", "BENCH_analysis.json", "output path for the analysisscale experiment's JSON result")
	wireJSON := fs.String("wire-json", "BENCH_wire.json", "output path for the wire experiment's JSON result")
	detectJSON := fs.String("detect-json", "BENCH_detect.json", "output path for the detect experiment's JSON report")
	detectMode := fs.String("detect-mode", "full", "detect matrix sizing: full | reduced (the CI gate uses reduced)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *csvOut != "" {
		if err := os.MkdirAll(*csvOut, 0o755); err != nil {
			return fail(err)
		}
		csvDir = *csvOut
	}

	opts := eval.DefaultOptions()
	if *slaves > 0 {
		opts.Slaves = *slaves
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *duration > 0 {
		opts.FaultDuration = *duration
	}

	want := strings.ToLower(*experiment)
	runAll := want == "all"

	var model *analysis.Model
	needModel := runAll || strings.HasPrefix(want, "fig") || want == "ablation" || want == "workload"
	if needModel {
		fmt.Printf("training black-box model (%d slaves, %d fault-free seconds, %d states)...\n",
			opts.Slaves, opts.TrainSeconds, opts.NumStates)
		var err error
		model, err = eval.TrainDefaultModel(opts.Slaves, opts.Seed, opts.TrainSeconds, opts.NumStates)
		if err != nil {
			return fail(err)
		}
	}

	ok := true
	dispatch := map[string]func() error{
		"table3":        runTable3,
		"table4":        runTable4,
		"fig6a":         func() error { return runFig6a(opts, model) },
		"fig6b":         func() error { return runFig6b(opts, model) },
		"fig7a":         func() error { return runFig7(opts, model, true) },
		"fig7b":         func() error { return runFig7(opts, model, false) },
		"ablation":      func() error { return runAblation(opts, model) },
		"workload":      func() error { return runWorkload(opts, model) },
		"shardscale":    func() error { return runShardScale(*shardJSON) },
		"analysisscale": func() error { return runAnalysisScale(*analysisJSON) },
		"hier":          func() error { return runHierScale(*hierJSON) },
		"wire":          func() error { return runWire(*wireJSON) },
		"detect":        func() error { return runDetect(*detectJSON, *detectMode) },
	}
	if runAll {
		for _, name := range []string{"table3", "table4", "fig6a", "fig6b", "fig7a", "fig7b", "ablation", "workload"} {
			if err := dispatch[name](); err != nil {
				fmt.Fprintf(os.Stderr, "asdf-bench: %s: %v\n", name, err)
				ok = false
			}
		}
	} else {
		f, known := dispatch[want]
		if !known {
			fmt.Fprintf(os.Stderr, "asdf-bench: unknown experiment %q\n", *experiment)
			return 2
		}
		if err := f(); err != nil {
			return fail(err)
		}
	}
	if !ok {
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "asdf-bench: %v\n", err)
	return 1
}

// csvDir, when non-empty, receives one CSV file per exhibit.
var csvDir string

// writeCSV emits an exhibit's data for external plotting.
func writeCSV(name string, header []string, rows [][]string) {
	if csvDir == "" {
		return
	}
	var b strings.Builder
	b.WriteString(strings.Join(header, ",") + "\n")
	for _, r := range rows {
		b.WriteString(strings.Join(r, ",") + "\n")
	}
	path := filepath.Join(csvDir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "asdf-bench: writing %s: %v\n", path, err)
		return
	}
	fmt.Printf("(wrote %s)\n", path)
}

func runTable3() error {
	rows, err := eval.MeasureTable3(200)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Table 3: monitoring overhead (CPU % of one core at 1 Hz, resident memory) ===")
	fmt.Printf("%-18s %12s %12s %14s %14s\n", "Process", "paper %CPU", "ours %CPU", "paper MB", "ours MB")
	paper := map[string][2]float64{
		"hadoop_log_rpcd": {0.0245, 2.36},
		"sadc_rpcd":       {0.3553, 0.77},
		"fpt-core":        {0.8063, 5.11},
	}
	for _, r := range rows {
		p := paper[r.Process]
		fmt.Printf("%-18s %12.4f %12.4f %14.2f %14.2f\n", r.Process, p[0], r.CPUPct, p[1], r.MemoryMB)
	}
	fmt.Println("shape target: per-node daemons well under 1% CPU; fpt-core the heaviest.")
	return nil
}

func runTable4() error {
	rows, err := eval.MeasureTable4(60)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Table 4: RPC bandwidth (static setup kB, per-iteration kB/s at 1 Hz) ===")
	fmt.Printf("%-10s %14s %14s %16s %16s\n", "RPC type", "paper static", "ours static", "paper kB/s", "ours kB/s")
	paper := map[string][2]float64{
		"sadc-tcp":  {1.98, 1.22},
		"hl-dn-tcp": {2.04, 0.31},
		"hl-tt-tcp": {2.04, 0.32},
		"TCP Sum":   {6.06, 1.85},
	}
	for _, r := range rows {
		p := paper[r.RPCType]
		fmt.Printf("%-10s %14.2f %14.2f %16.2f %16.2f\n", r.RPCType, p[0], r.StaticKB, p[1], r.PerIterKBs)
	}
	fmt.Println("shape target: static setup a few kB; steady-state monitoring a few kB/s per node.")
	return nil
}

func runFig6a(opts eval.Options, model *analysis.Model) error {
	points, err := eval.Figure6a(opts, model, eval.Figure6aThresholds())
	if err != nil {
		return err
	}
	fmt.Println("\n=== Figure 6(a): black-box false-positive rate vs threshold (problem-free GridMix) ===")
	fmt.Printf("%-10s %10s\n", "threshold", "FPR %")
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		fmt.Printf("%-10.0f %10.1f  %s\n", p.Param, p.FPR*100, bar(p.FPR))
		rows = append(rows, []string{fmt.Sprint(p.Param), fmt.Sprintf("%.4f", p.FPR)})
	}
	writeCSV("fig6a.csv", []string{"threshold", "fpr"}, rows)
	fmt.Println("shape target (paper): FPR drops rapidly with threshold; little improvement past the knee (~60 in the paper; similar here).")
	return nil
}

func runFig6b(opts eval.Options, model *analysis.Model) error {
	points, err := eval.Figure6b(opts, model, eval.Figure6bKs())
	if err != nil {
		return err
	}
	fmt.Println("\n=== Figure 6(b): white-box false-positive rate vs k (problem-free GridMix) ===")
	fmt.Printf("%-10s %10s\n", "k", "FPR %")
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		fmt.Printf("%-10.1f %10.2f  %s\n", p.Param, p.FPR*100, bar(p.FPR))
		rows = append(rows, []string{fmt.Sprint(p.Param), fmt.Sprintf("%.4f", p.FPR)})
	}
	writeCSV("fig6b.csv", []string{"k", "fpr"}, rows)
	fmt.Println("shape target (paper): FPR under a few %, flat past k = 3.")
	return nil
}

func runFig7(opts eval.Options, model *analysis.Model, accuracy bool) error {
	params := eval.DefaultParams(model.NumStates())
	results, err := eval.Figure7(opts, model, params)
	if err != nil {
		return err
	}
	approaches := []eval.Approach{eval.ApproachBlackBox, eval.ApproachWhiteBox, eval.ApproachCombined}
	if accuracy {
		fmt.Println("\n=== Figure 7(a): balanced accuracy per fault (%) ===")
		fmt.Printf("%-12s %12s %12s %12s\n", "fault", "black-box", "white-box", "combined")
		for _, r := range results {
			fmt.Printf("%-12s", r.Fault)
			for _, a := range approaches {
				fmt.Printf(" %11.0f%%", r.Outcomes[a].BalancedAccuracy*100)
			}
			fmt.Println()
		}
		fmt.Printf("%-12s", "MEAN")
		for _, a := range approaches {
			fmt.Printf(" %11.0f%%", eval.MeanBalancedAccuracy(results, a)*100)
		}
		fmt.Println()
		rows := make([][]string, 0, len(results))
		for _, r := range results {
			rows = append(rows, []string{r.Fault.String(),
				fmt.Sprintf("%.4f", r.Outcomes[eval.ApproachBlackBox].BalancedAccuracy),
				fmt.Sprintf("%.4f", r.Outcomes[eval.ApproachWhiteBox].BalancedAccuracy),
				fmt.Sprintf("%.4f", r.Outcomes[eval.ApproachCombined].BalancedAccuracy)})
		}
		writeCSV("fig7a.csv", []string{"fault", "blackbox_ba", "whitebox_ba", "combined_ba"}, rows)
		fmt.Println("paper means: black-box 71%, white-box 78%, combined 80%.")
		fmt.Println("shape targets: BB strong on resource faults, weak on HADOOP-1152/2080; WB strong there; combined dominates both.")
	} else {
		fmt.Println("\n=== Figure 7(b): fingerpointing latency per fault (seconds; -1 = never confidently localized) ===")
		fmt.Printf("%-12s %12s %12s %12s\n", "fault", "black-box", "white-box", "combined")
		for _, r := range results {
			fmt.Printf("%-12s", r.Fault)
			for _, a := range approaches {
				fmt.Printf(" %12.0f", r.Outcomes[a].LatencySec)
			}
			fmt.Println()
		}
		rows := make([][]string, 0, len(results))
		for _, r := range results {
			rows = append(rows, []string{r.Fault.String(),
				fmt.Sprintf("%.0f", r.Outcomes[eval.ApproachBlackBox].LatencySec),
				fmt.Sprintf("%.0f", r.Outcomes[eval.ApproachWhiteBox].LatencySec),
				fmt.Sprintf("%.0f", r.Outcomes[eval.ApproachCombined].LatencySec)})
		}
		writeCSV("fig7b.csv", []string{"fault", "blackbox_s", "whitebox_s", "combined_s"}, rows)
		fmt.Println("paper: ~200 s for most faults (3-window confidence); longest for the dormant reduce faults (HADOOP-1152/2080).")
		fmt.Println("shape targets: resource faults localize within a few windows; HADOOP-1152 is the slowest.")
	}
	return nil
}

func runAblation(opts eval.Options, model *analysis.Model) error {
	params := eval.DefaultParams(model.NumStates())
	rows, err := eval.Ablation(opts, params)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Ablation: the design choices of DESIGN.md §5a, each reverted ===")
	fmt.Printf("%-46s %10s %10s\n", "variant", "mean BA %", "clean FPR %")
	for _, r := range rows {
		fmt.Printf("%-46s %9.0f%% %10.1f%%\n", r.Variant, r.MeanBA*100, r.CleanFPR*100)
	}
	fmt.Println("expectations: stall metrics carry the white-box hang detection; metric")
	fmt.Println("selection and validated training each buy black-box accuracy and robustness.")
	return nil
}

func runWorkload(opts eval.Options, model *analysis.Model) error {
	params := eval.DefaultParams(model.NumStates())
	res, err := eval.WorkloadChange(opts, model, params)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Workload change (§2.1): peer comparison vs static-threshold baseline ===")
	fmt.Printf("%-34s %12s %12s\n", "approach", "FPR before", "FPR after")
	fmt.Printf("%-34s %11.1f%% %11.1f%%\n", "ASDF peer comparison (black-box)", res.PeerFPRBefore*100, res.PeerFPRAfter*100)
	fmt.Printf("%-34s %11.1f%% %11.1f%%\n", "static thresholds (rule baseline)", res.RuleFPRBefore*100, res.RuleFPRAfter*100)
	fmt.Printf("the GridMix composition switches from light (webdataScan+combiner) to heavy\n")
	fmt.Printf("(javaSort+monsterQuery) at t = %d s; the run is fault-free throughout, so\n", res.SwitchAtSec)
	fmt.Println("every alarm is a false positive. Peer comparison rides through the change;")
	fmt.Println("thresholds calibrated on the light phase fire persistently after it (§2.1).")
	return nil
}

// runShardScale measures the sharded collection plane's per-tick latency
// against the single-shard baseline at growing cluster sizes and writes
// the result as JSON (the committed BENCH_shard.json artifact).
func runShardScale(jsonPath string) error {
	cfg := eval.DefaultShardScaleConfig()
	points, err := eval.MeasureShardScaling(cfg)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Shard scaling: per-tick collection latency, serial vs sharded sweep ===")
	fmt.Printf("(simulated daemons %v away; sharded = %d shards x %d workers)\n",
		cfg.RPCLatency, cfg.Shards, cfg.ShardFanout)
	fmt.Printf("%-8s %8s %14s %10s\n", "nodes", "shards", "per-tick ms", "speedup")
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		fmt.Printf("%-8d %8d %14.2f %9.1fx\n", p.Nodes, p.Shards, p.PerTickMs, p.SpeedupVsSerial)
		rows = append(rows, []string{fmt.Sprint(p.Nodes), fmt.Sprint(p.Shards),
			fmt.Sprintf("%.3f", p.PerTickMs), fmt.Sprintf("%.2f", p.SpeedupVsSerial)})
	}
	writeCSV("shardscale.csv", []string{"nodes", "shards", "per_tick_ms", "speedup"}, rows)
	fmt.Println("shape target: sharded per-tick latency flat-ish in nodes/(shards*fanout); several-x win by 512 nodes.")
	if jsonPath != "" {
		out := struct {
			Experiment   string                 `json:"experiment"`
			RPCLatencyUS int64                  `json:"rpc_latency_us"`
			Ticks        int                    `json:"ticks"`
			Points       []eval.ShardScalePoint `json:"points"`
		}{"shardscale", cfg.RPCLatency.Microseconds(), cfg.Ticks, points}
		if err := writeReportAtomic(jsonPath, out); err != nil {
			return err
		}
		fmt.Printf("(wrote %s)\n", jsonPath)
	}
	return nil
}

// runAnalysisScale measures the batched analysis plane's per-tick latency
// and allocation count — one multi-node knn + mavgvec instance — against N
// per-node instances at growing cluster sizes and writes the result as
// JSON (the committed BENCH_analysis.json artifact).
func runAnalysisScale(jsonPath string) error {
	cfg := eval.DefaultAnalysisScaleConfig()
	points, err := eval.MeasureAnalysisScaling(cfg)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Analysis scaling: per-tick knn+mavgvec latency, per-node vs batched instances ===")
	fmt.Printf("(%d-wide vectors, %d-state model, window %d slide %d; batched = %d workers, block %d)\n",
		cfg.Dim, cfg.States, cfg.Window, cfg.Slide, cfg.Fanout, cfg.Block)
	fmt.Printf("%-8s %10s %14s %14s %10s\n", "nodes", "form", "per-tick us", "allocs/tick", "speedup")
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		fmt.Printf("%-8d %10s %14.1f %14.0f %9.1fx\n",
			p.Nodes, p.Form, p.NsPerTick/1e3, p.AllocsPerTick, p.SpeedupVsPerNode)
		rows = append(rows, []string{fmt.Sprint(p.Nodes), p.Form,
			fmt.Sprintf("%.0f", p.NsPerTick), fmt.Sprintf("%.0f", p.AllocsPerTick),
			fmt.Sprintf("%.2f", p.SpeedupVsPerNode)})
	}
	writeCSV("analysisscale.csv", []string{"nodes", "form", "ns_per_tick", "allocs_per_tick", "speedup"}, rows)
	fmt.Println("shape target: batched per-tick latency wins grow with scale; several-x and far fewer allocs by 1024 nodes.")
	if jsonPath != "" {
		out := struct {
			Experiment string                    `json:"experiment"`
			Dim        int                       `json:"dim"`
			States     int                       `json:"states"`
			Window     int                       `json:"window"`
			Slide      int                       `json:"slide"`
			Fanout     int                       `json:"fanout"`
			Block      int                       `json:"block"`
			Ticks      int                       `json:"ticks"`
			Points     []eval.AnalysisScalePoint `json:"points"`
		}{"analysisscale", cfg.Dim, cfg.States, cfg.Window, cfg.Slide, cfg.Fanout, cfg.Block, cfg.Ticks, points}
		if err := writeReportAtomic(jsonPath, out); err != nil {
			return err
		}
		fmt.Printf("(wrote %s)\n", jsonPath)
	}
	return nil
}

// runHierScale measures the hierarchical collection plane's per-tick
// latency — the fleet delegated to 2/4/8 shard leaders — against the
// single-process sweep at growing cluster sizes and writes the result as
// JSON (the committed BENCH_hier.json artifact).
func runHierScale(jsonPath string) error {
	cfg := eval.DefaultHierScaleConfig()
	points, err := eval.MeasureHierScaling(cfg)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Hierarchy scaling: per-tick collection latency, single process vs shard leaders ===")
	fmt.Printf("(simulated daemons %v away; each leader sweeps with %d workers; columnar root hop)\n",
		cfg.RPCLatency, cfg.LeaderFanout)
	fmt.Printf("%-8s %8s %14s %10s\n", "nodes", "leaders", "per-tick ms", "speedup")
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		fmt.Printf("%-8d %8d %14.2f %9.1fx\n", p.Nodes, p.Leaders, p.PerTickMs, p.SpeedupVsSingle)
		rows = append(rows, []string{fmt.Sprint(p.Nodes), fmt.Sprint(p.Leaders),
			fmt.Sprintf("%.3f", p.PerTickMs), fmt.Sprintf("%.2f", p.SpeedupVsSingle)})
	}
	writeCSV("hierscale.csv", []string{"nodes", "leaders", "per_tick_ms", "speedup"}, rows)
	fmt.Println("shape target: leader fleets hold per-tick latency roughly flat as nodes grow; clear win at >= 1024 nodes.")
	if jsonPath != "" {
		out := struct {
			Experiment   string                `json:"experiment"`
			RPCLatencyUS int64                 `json:"rpc_latency_us"`
			LeaderFanout int                   `json:"leader_fanout"`
			Ticks        int                   `json:"ticks"`
			Points       []eval.HierScalePoint `json:"points"`
		}{"hier", cfg.RPCLatency.Microseconds(), cfg.LeaderFanout, cfg.Ticks, points}
		if err := writeReportAtomic(jsonPath, out); err != nil {
			return err
		}
		fmt.Printf("(wrote %s)\n", jsonPath)
	}
	return nil
}

// runWire measures the JSON vs columnar wire cost of one collection tick
// at growing cluster sizes and writes the result as JSON (the committed
// BENCH_wire.json artifact).
func runWire(jsonPath string) error {
	cfg := eval.DefaultWireScaleConfig()
	points, err := eval.MeasureWireScaling(cfg)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Wire format: full-cluster bytes per collection tick, JSON vs columnar ===")
	fmt.Printf("(%d columns per node, %d drifting per tick, %d ticks)\n",
		cfg.Columns, cfg.ChangedPerTick, cfg.Ticks)
	fmt.Printf("%-8s %10s %16s %14s %12s\n", "nodes", "wire", "bytes/tick", "ns/metric", "reduction")
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		fmt.Printf("%-8d %10s %16.0f %14.1f %11.1fx\n",
			p.Nodes, p.Wire, p.BytesPerTick, p.NsPerMetric, p.ReductionVsJSON)
		rows = append(rows, []string{fmt.Sprint(p.Nodes), p.Wire,
			fmt.Sprintf("%.0f", p.BytesPerTick), fmt.Sprintf("%.2f", p.NsPerMetric),
			fmt.Sprintf("%.2f", p.ReductionVsJSON)})
	}
	writeCSV("wirescale.csv", []string{"nodes", "wire", "bytes_per_tick", "ns_per_metric", "reduction_vs_json"}, rows)
	fmt.Println("shape target: columnar several-x fewer bytes per tick at steady state (>= 5x by 512 nodes), no slower to serialize.")
	if jsonPath != "" {
		out := struct {
			Experiment     string                `json:"experiment"`
			Columns        int                   `json:"columns"`
			ChangedPerTick int                   `json:"changed_per_tick"`
			Ticks          int                   `json:"ticks"`
			Points         []eval.WireScalePoint `json:"points"`
		}{"wire", cfg.Columns, cfg.ChangedPerTick, cfg.Ticks, points}
		if err := writeReportAtomic(jsonPath, out); err != nil {
			return err
		}
		fmt.Printf("(wrote %s)\n", jsonPath)
	}
	return nil
}

// writeReportAtomic writes a JSON report via a temp file and rename, so a
// crashed or interrupted run never leaves a truncated committed artifact.
func writeReportAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(data, '\n'))
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// runDetect runs the detection-quality matrix — every injectable fault ×
// GridMix workload, scored under all three approaches — and writes the
// report as JSON (the committed BENCH_detect.json artifact; the CI
// detect-quality gate holds the reduced matrix against .github/detect-floor.json).
func runDetect(jsonPath, mode string) error {
	var cfg eval.DetectConfig
	switch mode {
	case "full":
		cfg = eval.DefaultDetectConfig()
	case "reduced":
		cfg = eval.ReducedDetectConfig()
	default:
		return fmt.Errorf("unknown detect mode %q (want full or reduced)", mode)
	}
	fmt.Printf("detect matrix (%s): %d faults x %d workloads, %d slaves, %d s per cell\n",
		mode, len(cfg.Faults), len(cfg.Workloads), cfg.Slaves, cfg.DurationSec)
	rep, err := eval.RunDetect(cfg, mode)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Detection quality: per-fault summary (combined approach across workloads) ===")
	fmt.Printf("%-14s %10s %10s %10s %12s\n", "fault", "TPR", "FPR", "bal acc", "detect s")
	rows := make([][]string, 0, len(rep.Cells))
	for _, c := range rep.Cells {
		s := c.Scores[eval.ApproachCombined.String()]
		rows = append(rows, []string{c.Fault, c.Workload,
			fmt.Sprintf("%.4f", s.TPR), fmt.Sprintf("%.4f", s.FPR),
			fmt.Sprintf("%.4f", s.BalancedAccuracy), fmt.Sprintf("%.0f", s.TimeToDetectionSec)})
	}
	for _, f := range rep.Faults {
		key := eval.ApproachCombined.String()
		var tprSum, fprSum float64
		n := 0
		for _, c := range rep.Cells {
			if c.Fault == f.Fault {
				tprSum += c.Scores[key].TPR
				fprSum += c.Scores[key].FPR
				n++
			}
		}
		fmt.Printf("%-14s %10.2f %10.2f %10.2f %12.0f\n", f.Fault,
			tprSum/float64(n), fprSum/float64(n), f.BalancedAccuracy[key], f.TimeToDetectionSec[key])
	}
	writeCSV("detect.csv", []string{"fault", "workload", "tpr", "fpr", "balanced_accuracy", "time_to_detection_sec"}, rows)
	fmt.Println("shape targets: resource + hang faults detected within a few windows; slow-burn")
	fmt.Println("faults (MemLeak, DiskDegrade, GCPause duty cycle) evade the 60 s peer window.")
	if jsonPath != "" {
		var buf bytes.Buffer
		if err := rep.Encode(&buf); err != nil {
			return err
		}
		if err := writeFileAtomic(jsonPath, buf.Bytes()); err != nil {
			return err
		}
		fmt.Printf("(wrote %s)\n", jsonPath)
	}
	return nil
}

func bar(frac float64) string {
	n := int(frac * 40)
	if n > 40 {
		n = 40
	}
	return strings.Repeat("#", n)
}
