// Command hadoop-sim runs the simulated Hadoop cluster as a live system:
// virtual time advances in real time (optionally accelerated), every slave
// exposes a sadc-rpcd and a hadoop-log-rpcd endpoint, and a fault can be
// injected after a delay — a self-contained testbed for the asdf control
// node, standing in for the paper's 50-node EC2 deployment.
//
// Usage:
//
//	hadoop-sim -slaves 10 -base-port 7500 -fault CPUHog -fault-node 3 -inject-after 5m
//	hadoop-sim -slaves 10 -emit-config fpt.conf -model model.json
//
// With -emit-config, the matching control-node configuration (the paper's
// Figure 4 pipelines, wired to this cluster's RPC endpoints) is written
// before the cluster starts; point `asdf -config` at it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/asdf-project/asdf/internal/eval"
	"github.com/asdf-project/asdf/internal/hadoopsim"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/rpc"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hadoop-sim", flag.ContinueOnError)
	slaves := fs.Int("slaves", 8, "number of slave nodes")
	seed := fs.Int64("seed", 1, "simulation seed")
	basePort := fs.Int("base-port", 7500, "first RPC port; slave i uses base+2i (sadc) and base+2i+1 (hadoop_log)")
	speed := fs.Float64("speed", 1, "virtual seconds per wall second")
	faultName := fs.String("fault", "", "fault to inject: CPUHog, DiskHog, PacketLoss, HADOOP-1036, HADOOP-1152, HADOOP-2080, MemLeak, NetPartition, NoisyNeighbor, DiskDegrade, GCPause, Straggler")
	faultNode := fs.Int("fault-node", 2, "slave index to inject the fault on")
	injectAfter := fs.Duration("inject-after", 5*time.Minute, "virtual delay before injection")
	emitConfig := fs.String("emit-config", "", "write a matching asdf control-node configuration to this path")
	modelPath := fs.String("model", "model.json", "model path referenced by the emitted configuration")
	trainSecs := fs.Int("train", 300, "fault-free virtual seconds used to train the model written to -model")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var fault hadoopsim.FaultKind
	if *faultName != "" {
		found := false
		for _, f := range hadoopsim.AllFaults {
			if strings.EqualFold(f.String(), *faultName) {
				fault = f
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "hadoop-sim: unknown fault %q\n", *faultName)
			return 2
		}
	}

	cluster, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(*slaves, *seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hadoop-sim: %v\n", err)
		return 1
	}

	if *emitConfig != "" {
		if err := writeControlConfig(cluster, *emitConfig, *modelPath, *basePort, *trainSecs, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "hadoop-sim: %v\n", err)
			return 1
		}
		log.Printf("hadoop-sim: wrote control-node configuration to %s and model to %s", *emitConfig, *modelPath)
	}

	var servers []*rpc.Server
	defer func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}()
	for i, n := range cluster.Slaves() {
		sadcSrv := rpc.NewServer(modules.ServiceSadc)
		modules.RegisterSadcServer(sadcSrv, n)
		addr := fmt.Sprintf(":%d", *basePort+2*i)
		if _, err := sadcSrv.Listen(addr); err != nil {
			fmt.Fprintf(os.Stderr, "hadoop-sim: %v\n", err)
			return 1
		}
		servers = append(servers, sadcSrv)

		hlSrv := rpc.NewServer(modules.ServiceHadoopLog)
		modules.RegisterHadoopLogServer(hlSrv, n.TaskTrackerLog(), n.DataNodeLog(), cluster.Now)
		addr = fmt.Sprintf(":%d", *basePort+2*i+1)
		if _, err := hlSrv.Listen(addr); err != nil {
			fmt.Fprintf(os.Stderr, "hadoop-sim: %v\n", err)
			return 1
		}
		servers = append(servers, hlSrv)
		log.Printf("hadoop-sim: %s on ports %d (sadc) and %d (hadoop_log)",
			n.Name, *basePort+2*i, *basePort+2*i+1)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	interval := time.Duration(float64(time.Second) / *speed)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	injected := false
	start := cluster.Now()
	log.Printf("hadoop-sim: %d slaves running GridMix at %.1fx; interrupt to stop", *slaves, *speed)
	for {
		select {
		case <-sig:
			log.Printf("hadoop-sim: %d jobs completed, %d tasks", cluster.JobsCompleted(), cluster.TasksCompleted())
			return 0
		case <-ticker.C:
			cluster.Tick()
			if fault != hadoopsim.FaultNone && !injected && cluster.Now().Sub(start) >= *injectAfter {
				if err := cluster.InjectFault(*faultNode, fault); err != nil {
					fmt.Fprintf(os.Stderr, "hadoop-sim: %v\n", err)
					return 1
				}
				injected = true
				log.Printf("hadoop-sim: injected %s on slave %d", fault, *faultNode)
			}
		}
	}
}

// writeControlConfig trains a model on a separate fault-free cluster and
// writes the paper's two-pipeline configuration wired to this cluster's
// RPC endpoints.
func writeControlConfig(cluster *hadoopsim.Cluster, path, modelPath string, basePort, trainSecs int, seed int64) error {
	slaves := len(cluster.Slaves())
	model, err := eval.TrainDefaultModel(slaves, seed+10000, trainSecs, 4)
	if err != nil {
		return err
	}
	if err := model.Save(modelPath); err != nil {
		return err
	}
	names := make([]string, slaves)
	for i, n := range cluster.Slaves() {
		names[i] = n.Name
	}
	params := eval.DefaultParams(model.NumStates())

	var b strings.Builder
	for i, n := range names {
		fmt.Fprintf(&b, "[sadc]\nid = sadc%d\nnode = %s\nmode = rpc\naddr = 127.0.0.1:%d\nperiod = 1\n\n",
			i, n, basePort+2*i)
		fmt.Fprintf(&b, "[knn]\nid = onenn%d\nmodel_file = %s\ninput[in] = sadc%d.output0\n\n", i, modelPath, i)
		fmt.Fprintf(&b, "[ibuffer]\nid = buf%d\nsize = 10\ninput[input] = onenn%d.output0\n\n", i, i)
	}
	fmt.Fprintf(&b, "[analysis_bb]\nid = bb\nthreshold = %g\nwindow = %d\nslide = %d\nstates = %d\n",
		params.BBThreshold, params.WindowSize, params.WindowSlide, model.NumStates())
	for i := range names {
		fmt.Fprintf(&b, "input[l%d] = @buf%d\n", i, i)
	}
	b.WriteString("\n[print]\nid = BlackBoxAlarm\nlabel = BB\ninput[a] = @bb\n\n")

	addrs := make([]string, slaves)
	for i := range names {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", basePort+2*i+1)
	}
	fmt.Fprintf(&b, "[hadoop_log]\nid = hl_tt\nkind = tasktracker\nnodes = %s\nmode = rpc\naddrs = %s\nperiod = 1\n\n",
		strings.Join(names, ","), strings.Join(addrs, ","))
	fmt.Fprintf(&b, "[analysis_wb]\nid = wb\nk = %g\nwindow = %d\nslide = %d\n",
		params.WBK, params.WindowSize, params.WindowSlide)
	for i := range names {
		fmt.Fprintf(&b, "input[s%d] = hl_tt.%s\n", i, names[i])
	}
	b.WriteString("\n[print]\nid = TaskTrackerAlarm\nlabel = WB\ninput[a] = @wb\n")

	return os.WriteFile(path, []byte(b.String()), 0o644)
}
