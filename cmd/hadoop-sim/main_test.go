package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/asdf-project/asdf/internal/config"
	"github.com/asdf-project/asdf/internal/hadoopsim"
)

func TestRunFlagValidation(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"-fault", "NoSuchFault"}); code != 2 {
		t.Errorf("unknown fault exit = %d, want 2", code)
	}
	if code := run([]string{"-slaves", "0"}); code != 1 {
		t.Errorf("zero slaves exit = %d, want 1", code)
	}
}

func TestWriteControlConfig(t *testing.T) {
	cluster, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "fpt.conf")
	modelPath := filepath.Join(dir, "model.json")
	if err := writeControlConfig(cluster, cfgPath, modelPath, 7500, 60, 1); err != nil {
		t.Fatal(err)
	}
	// The model must exist and the configuration must parse with the
	// expected instances.
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatalf("model not written: %v", err)
	}
	f, err := config.ParseFile(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool)
	for _, in := range f.Instances {
		ids[in.ID] = true
	}
	for _, want := range []string{"sadc0", "sadc2", "onenn1", "buf0", "bb", "BlackBoxAlarm", "hl_tt", "wb", "TaskTrackerAlarm"} {
		if !ids[want] {
			t.Errorf("emitted configuration missing instance %q", want)
		}
	}
	// RPC endpoints must follow the base-port layout.
	sadc0, _ := f.Instance("sadc0")
	if got := sadc0.StringParam("addr", ""); got != "127.0.0.1:7500" {
		t.Errorf("sadc0 addr = %q", got)
	}
	hl, _ := f.Instance("hl_tt")
	if addrs := hl.StringParam("addrs", ""); !strings.Contains(addrs, "127.0.0.1:7501") {
		t.Errorf("hl_tt addrs = %q", addrs)
	}
}
