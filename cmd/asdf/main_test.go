package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunListModules(t *testing.T) {
	if code := run([]string{"-list-modules"}); code != 0 {
		t.Errorf("exit = %d", code)
	}
}

func TestRunMissingConfig(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Errorf("exit without -config = %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-nonsense"}); code != 2 {
		t.Errorf("exit with bad flag = %d, want 2", code)
	}
}

func TestRunUnreadableConfig(t *testing.T) {
	if code := run([]string{"-config", "/nonexistent/fpt.conf"}); code != 1 {
		t.Errorf("exit with missing config = %d, want 1", code)
	}
}

func TestRunInvalidConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.conf")
	// References a module that does not exist.
	if err := os.WriteFile(path, []byte("[nosuch]\nid = x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-config", path}); code != 1 {
		t.Errorf("exit with invalid config = %d, want 1", code)
	}
}
