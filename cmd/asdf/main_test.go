package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	asdf "github.com/asdf-project/asdf"
	"github.com/asdf-project/asdf/internal/state"
	"github.com/asdf-project/asdf/internal/telemetry"
)

func TestRunListModules(t *testing.T) {
	if code := run([]string{"-list-modules"}); code != 0 {
		t.Errorf("exit = %d", code)
	}
}

func TestRunMissingConfig(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Errorf("exit without -config = %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-nonsense"}); code != 2 {
		t.Errorf("exit with bad flag = %d, want 2", code)
	}
}

func TestRunUnreadableConfig(t *testing.T) {
	if code := run([]string{"-config", "/nonexistent/fpt.conf"}); code != 1 {
		t.Errorf("exit with missing config = %d, want 1", code)
	}
}

func TestRunInvalidConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.conf")
	// References a module that does not exist.
	if err := os.WriteFile(path, []byte("[nosuch]\nid = x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-config", path}); code != 1 {
		t.Errorf("exit with invalid config = %d, want 1", code)
	}
}

func TestRunBadDegrade(t *testing.T) {
	if code := run([]string{"-degrade", "sideways", "-list-modules"}); code != 2 {
		t.Errorf("exit with bad -degrade = %d, want 2", code)
	}
}

func TestRunPprofRequiresStatusAddr(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fpt.conf")
	if err := os.WriteFile(path, []byte(""), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-config", path, "-pprof"}); code != 2 {
		t.Errorf("exit with -pprof but no -status-addr = %d, want 2", code)
	}
}

// TestPprofEndpointGated verifies the profile routes exist only when
// explicitly enabled: the status surface must not leak stacks by default.
func TestPprofEndpointGated(t *testing.T) {
	reg := asdf.NewBareRegistry()
	reg.Register("broken", func() asdf.Module { return &brokenSource{} })
	cfg, err := asdf.ParseConfigString("[broken]\nid = f\nperiod = 1\n")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := asdf.NewEngine(reg, cfg, asdf.WithErrorHandler(func(string, error) {}))
	if err != nil {
		t.Fatal(err)
	}
	for _, on := range []bool{false, true} {
		srv, addr, err := serveStatusHTTP("127.0.0.1:0", statusView{Engine: eng}, asdf.NewTelemetry(), on)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get("http://" + addr.String() + "/debug/pprof/goroutine?debug=1")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		_ = srv.Close()
		if on {
			if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
				t.Errorf("pprof on: GET /debug/pprof/goroutine = %d %.60q, want a goroutine profile", resp.StatusCode, body)
			}
		} else if resp.StatusCode != http.StatusNotFound {
			t.Errorf("pprof off: GET /debug/pprof/goroutine = %d, want 404", resp.StatusCode)
		}
	}
}

// brokenSource errors on every run; used to drive an engine unhealthy.
type brokenSource struct{}

func (m *brokenSource) Init(ctx *asdf.InitContext) error {
	if _, err := ctx.NewOutput("output0", asdf.Origin{Source: "broken"}); err != nil {
		return err
	}
	return ctx.SchedulePeriodic(time.Second)
}

func (m *brokenSource) Run(ctx *asdf.RunContext) error {
	if ctx.Reason == asdf.RunFlush {
		return nil
	}
	return errors.New("broken")
}

// TestStatusEndpoints drives the operator HTTP surface through both
// answers: 200 "ok" on a healthy engine, 503 "degraded" once an instance is
// quarantined, with /status carrying the full JSON snapshot either way.
func TestStatusEndpoints(t *testing.T) {
	reg := asdf.NewBareRegistry()
	reg.Register("broken", func() asdf.Module { return &brokenSource{} })
	cfg, err := asdf.ParseConfigString("[broken]\nid = f\nperiod = 1\n")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := asdf.NewEngine(reg, cfg,
		asdf.WithQuarantine(1, time.Minute),
		asdf.WithErrorHandler(func(string, error) {}))
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := serveStatusHTTP("127.0.0.1:0", statusView{Engine: eng}, asdf.NewTelemetry(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	base := "http://" + addr.String()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("healthy /healthz = %d %q, want 200 ok", code, body)
	}
	var rep asdf.StatusReport
	if _, body := get("/status"); json.Unmarshal([]byte(body), &rep) != nil {
		t.Fatalf("bad /status JSON: %s", body)
	}
	if !rep.Healthy || len(rep.Instances) != 1 {
		t.Errorf("healthy /status = %+v, want healthy with 1 instance", rep)
	}

	// One failing tick exhausts the threshold-1 budget.
	if err := eng.Tick(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || body != "degraded\n" {
		t.Errorf("degraded /healthz = %d %q, want 503 degraded", code, body)
	}
	if _, body := get("/status"); json.Unmarshal([]byte(body), &rep) != nil {
		t.Fatalf("bad /status JSON: %s", body)
	}
	if rep.Healthy {
		t.Error("/status claims healthy with a quarantined instance")
	}
	if len(rep.Instances) != 1 || rep.Instances[0].State != asdf.SupervisorQuarantined {
		t.Errorf("/status instances = %+v, want f quarantined", rep.Instances)
	}
}

// TestMetricsEndpoint scrapes GET /metrics from the operator server and
// checks the exposed supervisor counters against the /status JSON snapshot
// taken from the same quiesced engine — the acceptance contract for the
// exposition surface.
func TestMetricsEndpoint(t *testing.T) {
	metrics := asdf.NewTelemetry()
	reg := asdf.NewBareRegistry()
	reg.Register("broken", func() asdf.Module { return &brokenSource{} })
	cfg, err := asdf.ParseConfigString("[broken]\nid = f\nperiod = 1\n")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := asdf.NewEngine(reg, cfg,
		asdf.WithTelemetry(metrics),
		asdf.WithQuarantine(3, time.Minute),
		asdf.WithErrorHandler(func(string, error) {}))
	if err != nil {
		t.Fatal(err)
	}
	// Three failing ticks: two budget strikes, then quarantine entry.
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		if err := eng.Tick(start.Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}

	srv, addr, err := serveStatusHTTP("127.0.0.1:0", statusView{Engine: eng}, metrics, false)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	scraped, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}

	var rep asdf.StatusReport
	sresp, err := http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sresp.Body.Close() }()
	if err := json.NewDecoder(sresp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}

	ih := rep.Instances[0]
	for series, want := range map[string]float64{
		`asdf_supervisor_failures_total{instance="f",kind="error"}`: float64(ih.Errors),
		`asdf_supervisor_quarantines_total{instance="f"}`:           float64(ih.Quarantines),
		`asdf_supervisor_state{instance="f"}`:                       float64(ih.State),
		"asdf_engine_tick_seconds_count":                            3,
	} {
		if got, ok := scraped[series]; !ok || got != want {
			t.Errorf("scraped %s = %v (present=%v), want %v", series, got, ok, want)
		}
	}
	if ih.Errors == 0 || ih.Quarantines == 0 {
		t.Errorf("scenario did not exercise failures/quarantine: %+v", ih)
	}
}

// TestStateMetricsMatchStatus runs the crash-safe state layer behind the
// operator HTTP surface and checks the asdf_state_* series scraped from
// GET /metrics against the restart section of the GET /status snapshot —
// the same-engine equality contract the supervisor metrics already honor.
func TestStateMetricsMatchStatus(t *testing.T) {
	metrics := asdf.NewTelemetry()
	reg := asdf.NewBareRegistry()
	reg.Register("broken", func() asdf.Module { return &brokenSource{} })
	cfg, err := asdf.ParseConfigString("[broken]\nid = f\nperiod = 1\n")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := asdf.NewEngine(reg, cfg,
		asdf.WithTelemetry(metrics),
		asdf.WithErrorHandler(func(string, error) {}))
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := state.Open(eng, state.Options{
		Path:    filepath.Join(t.TempDir(), "asdf.state"),
		Metrics: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mgr.Close() }()
	if err := eng.Tick(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.SnapshotNow(); err != nil {
		t.Fatal(err)
	}

	srv, addr, err := serveStatusHTTP("127.0.0.1:0", statusView{Engine: eng, mgr: mgr}, metrics, false)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	scraped, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	var rep asdf.StatusReport
	sresp, err := http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sresp.Body.Close() }()
	if err := json.NewDecoder(sresp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Restart == nil {
		t.Fatal("/status has no restart section despite a state manager")
	}
	rs := rep.Restart
	if rs.SnapshotsWritten == 0 || rs.SnapshotBytes == 0 {
		t.Fatalf("scenario wrote no snapshot: %+v", rs)
	}
	for series, want := range map[string]float64{
		"asdf_state_restarts":                float64(rs.Restarts),
		"asdf_state_snapshots_written_total": float64(rs.SnapshotsWritten),
		"asdf_state_snapshot_bytes":          float64(rs.SnapshotBytes),
	} {
		if got, ok := scraped[series]; !ok || got != want {
			t.Errorf("scraped %s = %v (present=%v), want %v", series, got, ok, want)
		}
	}
}
