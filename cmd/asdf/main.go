// Command asdf is the ASDF control node: it loads an fpt-core
// configuration, wires the data-collection and analysis modules into a DAG,
// and fingerpoints online until interrupted (§3.1 of the paper).
//
// Data sources are typically remote: sadc and hadoop_log module instances
// in `mode = rpc` poll the per-node sadc-rpcd and hadoop-log-rpcd daemons.
// Alarms from print modules go to stdout.
//
// With -status-addr the control node also serves an operator health
// endpoint: GET /healthz answers ok/degraded, GET /status returns a JSON
// snapshot of per-instance supervisor state, per-node breaker health, and
// timestamp-sync counters, and GET /metrics exposes the same runtime — run
// latency histograms, tick/wavefront durations, supervisor transitions,
// breaker states, sync counters — in Prometheus text format for scraping.
// -status-rpc-addr serves the status snapshot over the native RPC protocol
// for tooling that already speaks it (see cmd/asdf-status). With -pprof the
// Go runtime profiles are additionally served under /debug/pprof/ on the
// status address.
//
// Usage:
//
//	asdf -config fpt.conf
//	asdf -config fpt.conf -status-addr 127.0.0.1:7070
//	asdf -list-modules
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	asdf "github.com/asdf-project/asdf"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/state"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("asdf", flag.ContinueOnError)
	configPath := fs.String("config", "", "fpt-core configuration file (required)")
	listModules := fs.Bool("list-modules", false, "list available modules and exit")
	callTimeout := fs.Duration("call-timeout", 0, "per-RPC deadline for collection daemons (0 = default 10s)")
	reconnectBackoff := fs.Duration("reconnect-backoff", 0, "initial reconnect backoff to a dead daemon (0 = default 100ms)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive failures before a node's circuit breaker opens (0 = default 5)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "open-breaker wait before a half-open probe (0 = default 2s)")
	parallelism := fs.Int("parallelism", 1,
		"engine wavefront width for step-mode (tick-driven) scheduling: 1 = serial, "+
			"0 = GOMAXPROCS; output is byte-identical at any width. The online "+
			"real-time mode used by this command already runs every module instance "+
			"on its own goroutine regardless")
	runTimeout := fs.Duration("run-timeout", 0, "watchdog deadline per module Run; a wedged Run is abandoned and counted as a timeout failure (0 = no watchdog)")
	quarThreshold := fs.Int("quarantine-threshold", 0, "consecutive module failures (error/panic/timeout) before an instance is quarantined (0 = never)")
	quarCooldown := fs.Duration("quarantine-cooldown", 0, "quarantined-instance wait before a half-open re-probe (0 = default 10s)")
	degrade := fs.String("degrade", "skip", "gap-fill policy for a quarantined instance's outputs: skip, hold, zero, or auto (tightens to hold while the open-breaker fraction is high)")
	shards := fs.Int("shards", 0, "default shard-worker count for multi-node collection instances; the shards parameter overrides per instance (0 = single shard)")
	shardFanout := fs.Int("shard-fanout", 0, "default per-shard concurrent-fetch budget; the shard_fanout parameter overrides per instance (0 = the instance's fanout)")
	wire := fs.String("wire", "", "default wire format for rpc-mode collection instances: json or columnar (delta-encoded streams); the wire parameter overrides per instance")
	stateFile := fs.String("state-file", "", "persist supervisor/breaker/watermark state to this file and restore it on restart (crash-safe control plane)")
	stateInterval := fs.Duration("state-interval", 5*time.Second, "interval between state snapshots (with -state-file)")
	probeBudget := fs.Int("probe-budget", 4, "restored open breakers re-probed per probe interval after a restart (with -state-file)")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "stagger interval for restored-breaker re-probes after a restart (with -state-file)")
	statusAddr := fs.String("status-addr", "", "serve the operator health endpoint (GET /healthz, GET /status) on this address")
	statusRPCAddr := fs.String("status-rpc-addr", "", "serve the status snapshot over the native RPC protocol on this address")
	pprofEnabled := fs.Bool("pprof", false, "also serve net/http/pprof profiles under /debug/pprof/ on -status-addr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	degradePolicy, err := asdf.ParseDegradePolicy(*degrade)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdf: %v\n", err)
		return 2
	}
	if *pprofEnabled && *statusAddr == "" {
		fmt.Fprintln(os.Stderr, "asdf: -pprof requires -status-addr")
		return 2
	}

	// One registry covers the whole control node: the engine's scheduler
	// and supervisor metrics, the collection plane's per-node RPC metrics,
	// and the sync counters all land here, served on GET /metrics.
	metrics := asdf.NewTelemetry()

	// The adaptive controller derives the degrade posture from the live
	// open-breaker fraction: degrade = auto and sync_quorum = auto resolve
	// through it, with transitions logged and exposed as asdf_adaptive_*.
	adaptive := asdf.NewAdaptiveController(asdf.AdaptiveConfig{
		Metrics: metrics,
		Logf:    log.Printf,
	})

	env := asdf.NewEnv()
	env.AlarmWriter = os.Stdout
	env.Metrics = metrics
	env.Adaptive = adaptive
	// Collection-plane resilience defaults; per-instance configuration
	// parameters override these.
	env.RPCOptions.CallTimeout = *callTimeout
	env.RPCOptions.ReconnectBackoff = *reconnectBackoff
	env.RPCOptions.BreakerThreshold = *breakerThreshold
	env.RPCOptions.BreakerCooldown = *breakerCooldown
	env.RPCOptions.Clock = time.Now
	env.DefaultShards = *shards
	env.DefaultShardFanout = *shardFanout
	env.DefaultWire = *wire
	reg := asdf.NewRegistry(env)

	if *listModules {
		for _, name := range reg.Names() {
			fmt.Println(name)
		}
		return 0
	}
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "asdf: -config is required (see -h)")
		return 2
	}

	cfg, err := asdf.ParseConfig(*configPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdf: %v\n", err)
		return 1
	}
	// Module failures (a dead collection daemon, a parse failure, a panic,
	// a wedged Run) are supervised: logged and retried, quarantined past
	// the failure budget, never fatal.
	eng, err := asdf.NewEngine(reg, cfg,
		asdf.WithTelemetry(metrics),
		asdf.WithParallelism(*parallelism),
		asdf.WithWatchdog(*runTimeout),
		asdf.WithQuarantine(*quarThreshold, *quarCooldown),
		asdf.WithDegrade(degradePolicy),
		asdf.WithDegradeResolver(adaptive.DegradePolicy),
		asdf.WithErrorHandler(func(id string, err error) {
			log.Printf("asdf: module %s: %v", id, err)
		}))
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdf: %v\n", err)
		return 1
	}
	log.Printf("asdf: %d module instances wired: %v", len(eng.Instances()), eng.Instances())

	// With -state-file the control node is crash-safe: supervisor state,
	// per-node breaker state, and the collectors' publish watermarks are
	// snapshotted periodically and restored on boot, so a kill -9 resumes
	// quarantine clocks, staggers re-probes of known-dead daemons, and never
	// re-publishes data the previous life already delivered.
	var mgr *state.Manager
	if *stateFile != "" {
		mgr, err = state.Open(eng, state.Options{
			Path:          *stateFile,
			Interval:      *stateInterval,
			Logf:          log.Printf,
			Metrics:       metrics,
			ProbeBudget:   *probeBudget,
			ProbeInterval: *probeInterval,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "asdf: state: %v\n", err)
			return 1
		}
		defer func() { _ = mgr.Close() }()
		if st := mgr.Status(); st.Restarts > 0 {
			log.Printf("asdf: restart #%d: restored %d supervisors, %d breakers, %d watermarks from %s",
				st.Restarts, st.RestoredSupervisors, st.RestoredBreakers, st.RestoredWatermarks, st.Path)
		}
	}
	view := statusView{Engine: eng, mgr: mgr}

	if *statusAddr != "" {
		httpSrv, addr, err := serveStatusHTTP(*statusAddr, view, metrics, *pprofEnabled)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asdf: status endpoint: %v\n", err)
			return 1
		}
		defer func() { _ = httpSrv.Close() }()
		log.Printf("asdf: status endpoint on http://%s/status", addr)
		if *pprofEnabled {
			log.Printf("asdf: pprof on http://%s/debug/pprof/", addr)
		}
	}
	if *statusRPCAddr != "" {
		rpcSrv, addr, err := modules.ListenStatus(*statusRPCAddr, view, time.Now)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asdf: status rpc: %v\n", err)
			return 1
		}
		defer func() { _ = rpcSrv.Close() }()
		log.Printf("asdf: status rpc on %s", addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if mgr != nil {
		go mgr.Run(ctx)
	}
	log.Printf("asdf: fingerpointing online; interrupt to stop")
	if err := eng.Run(ctx); err != nil && err != context.Canceled {
		fmt.Fprintf(os.Stderr, "asdf: %v\n", err)
		return 1
	}
	return 0
}

// statusView is the engine surface the status endpoints render: the engine
// itself plus, when -state-file is set, the crash-safe state manager's
// restart accounting (the RESTART section of asdf-status and the
// StatusReport's restart field).
type statusView struct {
	*asdf.Engine
	mgr *state.Manager
}

func (v statusView) RestartStatus() (state.RestartStatus, bool) {
	if v.mgr == nil {
		return state.RestartStatus{}, false
	}
	return v.mgr.Status(), true
}

// serveStatusHTTP starts the operator health endpoint on addr and returns
// the server with its bound address. GET /healthz answers 200 "ok" while
// no instance is quarantined or wedged and no collection breaker is open,
// 503 "degraded" otherwise; GET /status returns the full JSON snapshot; and
// GET /metrics serves the telemetry registry in Prometheus text format.
// With pprofOn, the Go runtime profiles are additionally served under
// /debug/pprof/ — opt-in, since the profile endpoints expose stacks and
// command lines and cost CPU while sampling.
func serveStatusHTTP(addr string, view statusView, metrics *asdf.Telemetry, pprofOn bool) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		rep := modules.CollectStatus(view, time.Now())
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if rep.Healthy {
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "degraded")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := metrics.WriteTo(w); err != nil {
			log.Printf("asdf: metrics write: %v", err)
		}
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		rep := modules.CollectStatus(view, time.Now())
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Printf("asdf: status encode: %v", err)
		}
	})
	if pprofOn {
		// Explicit registration: the status server uses its own mux, so the
		// net/http/pprof init-time DefaultServeMux routes never apply.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("asdf: status endpoint: %v", err)
		}
	}()
	return srv, ln.Addr(), nil
}
