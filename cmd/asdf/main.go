// Command asdf is the ASDF control node: it loads an fpt-core
// configuration, wires the data-collection and analysis modules into a DAG,
// and fingerpoints online until interrupted (§3.1 of the paper).
//
// Data sources are typically remote: sadc and hadoop_log module instances
// in `mode = rpc` poll the per-node sadc-rpcd and hadoop-log-rpcd daemons.
// Alarms from print modules go to stdout.
//
// Usage:
//
//	asdf -config fpt.conf
//	asdf -list-modules
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	asdf "github.com/asdf-project/asdf"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("asdf", flag.ContinueOnError)
	configPath := fs.String("config", "", "fpt-core configuration file (required)")
	listModules := fs.Bool("list-modules", false, "list available modules and exit")
	callTimeout := fs.Duration("call-timeout", 0, "per-RPC deadline for collection daemons (0 = default 10s)")
	reconnectBackoff := fs.Duration("reconnect-backoff", 0, "initial reconnect backoff to a dead daemon (0 = default 100ms)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive failures before a node's circuit breaker opens (0 = default 5)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "open-breaker wait before a half-open probe (0 = default 2s)")
	parallelism := fs.Int("parallelism", 1,
		"engine wavefront width for step-mode (tick-driven) scheduling: 1 = serial, "+
			"0 = GOMAXPROCS; output is byte-identical at any width. The online "+
			"real-time mode used by this command already runs every module instance "+
			"on its own goroutine regardless")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	env := asdf.NewEnv()
	env.AlarmWriter = os.Stdout
	// Collection-plane resilience defaults; per-instance configuration
	// parameters override these.
	env.RPCOptions.CallTimeout = *callTimeout
	env.RPCOptions.ReconnectBackoff = *reconnectBackoff
	env.RPCOptions.BreakerThreshold = *breakerThreshold
	env.RPCOptions.BreakerCooldown = *breakerCooldown
	env.RPCOptions.Clock = time.Now
	reg := asdf.NewRegistry(env)

	if *listModules {
		for _, name := range reg.Names() {
			fmt.Println(name)
		}
		return 0
	}
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "asdf: -config is required (see -h)")
		return 2
	}

	cfg, err := asdf.ParseConfig(*configPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdf: %v\n", err)
		return 1
	}
	// Module run errors (a dead collection daemon, a parse failure) are
	// supervised: logged with the node's address and retried on the next
	// period, never fatal.
	eng, err := asdf.NewEngine(reg, cfg,
		asdf.WithParallelism(*parallelism),
		asdf.WithErrorHandler(func(id string, err error) {
			log.Printf("asdf: module %s: %v", id, err)
		}))
	if err != nil {
		fmt.Fprintf(os.Stderr, "asdf: %v\n", err)
		return 1
	}
	log.Printf("asdf: %d module instances wired: %v", len(eng.Instances()), eng.Instances())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("asdf: fingerpointing online; interrupt to stop")
	if err := eng.Run(ctx); err != nil && err != context.Canceled {
		fmt.Fprintf(os.Stderr, "asdf: %v\n", err)
		return 1
	}
	return 0
}
