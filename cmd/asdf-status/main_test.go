package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/rpc"
	"github.com/asdf-project/asdf/internal/state"
)

func sampleReport() modules.StatusReport {
	return modules.StatusReport{
		Time:    time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		Healthy: false,
		Instances: []core.InstanceHealth{
			{
				ID:            "collector",
				State:         core.SupervisorQuarantined,
				TotalFailures: 7,
				Errors:        5,
				Timeouts:      2,
				Quarantines:   1,
				LastFailure:   "dial tcp: connection refused",
			},
			{ID: "sink", State: core.SupervisorHealthy},
		},
		Breakers: map[string]map[string]rpc.Health{
			"collector": {
				"node1": {
					Addr:          "node1:9999",
					State:         rpc.BreakerOpen,
					TotalFailures: 7,
					Reconnects:    1,
					BytesSent:     5000,
					BytesReceived: 62000,
					LastError:     "connection refused",
				},
			},
		},
		Shards: map[string][]modules.ShardStatus{
			"collector": {
				{Shard: 0, Nodes: 3, Fanout: 2, Sweeps: 40, LastSweepSeconds: 0.0042},
				{Shard: 1, Nodes: 3, Fanout: 2, Sweeps: 40, Errors: 6,
					LastErrors: 1, LastSweepSeconds: 0.0101, OpenBreakers: 1},
			},
		},
		Leaders: map[string][]modules.LeaderStatus{
			"collector": {
				{Addr: "10.0.0.9:7411", Range: "0-64", Nodes: 64, Wire: "columnar",
					Health:   &rpc.Health{Addr: "10.0.0.9:7411", Connected: true},
					Partials: 40, Errors: 2, Restarts: 1,
					LeaderSweeps: 40, LeaderNodeErrors: 3, LeaderOpenBreakers: 1},
			},
		},
		Ibuffer: map[string]modules.IbufferStatus{
			"buf0": {Size: 10, Dropped: 17, Forwarded: 523},
		},
		Sync: map[string]modules.SyncStatus{
			"logs": {
				Partial: 3,
				Dropped: 1,
				MissingByNode: map[string]uint64{
					"node1": 3,
					"node2": 0,
				},
			},
		},
	}
}

func TestRenderTables(t *testing.T) {
	var buf bytes.Buffer
	render(&buf, sampleReport(), nil, 2*time.Second)
	out := buf.String()
	for _, want := range []string{
		"DEGRADED",
		"collector", "quarantined", "dial tcp: connection refused",
		"sink", "healthy",
		"BREAKERS", "node1:9999", "open", "SENT B", "62000",
		"SHARDS", "10.1ms",
		"LEADERS", "10.0.0.9:7411", "0-64", "columnar",
		"IBUFFER", "buf0", "523", "17",
		"SYNC", "logs", "node1:3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "node2:") {
		t.Errorf("render shows zero missing counter:\n%s", out)
	}
}

func TestRenderRestartLine(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	render(&buf, rep, nil, time.Second)
	if strings.Contains(buf.String(), "RESTART") {
		t.Errorf("RESTART line shown without a state file:\n%s", buf.String())
	}

	rep.Restart = &state.RestartStatus{
		Path:             "/var/lib/asdf/state",
		Restarts:         2,
		SnapshotsWritten: 41,
		LastSnapshotAt:   rep.Time.Add(-1500 * time.Millisecond),
		ReplayWatermarks: map[string]time.Time{
			"collector": time.Date(2026, 1, 2, 3, 3, 50, 0, time.UTC),
			"logs":      time.Date(2026, 1, 2, 3, 4, 1, 0, time.UTC),
		},
		LockReclaimed: true,
	}
	buf.Reset()
	render(&buf, rep, nil, time.Second)
	out := buf.String()
	for _, want := range []string{
		"RESTART",
		"restarts=2",
		"snapshots=41",
		"snapshot-age=1.5s",
		"watermark=2026-01-02T03:04:01Z", // the newest collector watermark
		"lock-reclaimed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderDeltas(t *testing.T) {
	prev := sampleReport()
	cur := sampleReport()
	cur.Instances[0].TotalFailures = 12 // +5 over prev's 7
	cur.Breakers["collector"]["node1"] = func() rpc.Health {
		h := cur.Breakers["collector"]["node1"]
		h.TotalFailures = 9     // +2
		h.BytesSent = 5400      // +400
		h.BytesReceived = 62900 // +900: the per-poll wire cost of this node
		return h
	}()
	cur.Sync["logs"] = modules.SyncStatus{Partial: 3, Dropped: 4}                      // dropped +3
	cur.Ibuffer["buf0"] = modules.IbufferStatus{Size: 10, Dropped: 22, Forwarded: 523} // dropped +5
	cur.Shards["collector"][1].Errors = 10                                             // +4 over prev's 6
	cur.Leaders["collector"][0].Partials = 46                                          // +6 over prev's 40

	var buf bytes.Buffer
	render(&buf, cur, &prev, time.Second)
	out := buf.String()
	for _, want := range []string{"12(+5)", "9(+2)", "4(+3)", "10(+4)", "5400(+400)", "62900(+900)", "46(+6)", "22(+5)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing delta %q:\n%s", want, out)
		}
	}
	// Unchanged counters render without a delta suffix.
	if strings.Contains(out, "1(+") || strings.Contains(out, "3(+") {
		t.Errorf("render shows a delta for an unchanged counter:\n%s", out)
	}
}

func TestDelta(t *testing.T) {
	for _, tc := range []struct {
		cur, prev uint64
		havePrev  bool
		want      string
	}{
		{5, 0, false, "5"},
		{5, 5, true, "5"},
		{8, 5, true, "8(+3)"},
		{2, 5, true, "2(reset)"},
	} {
		if got := delta(tc.cur, tc.prev, tc.havePrev); got != tc.want {
			t.Errorf("delta(%d, %d, %v) = %q, want %q", tc.cur, tc.prev, tc.havePrev, got, tc.want)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no addr: exit = %d, want 2", code)
	}
	if code := run([]string{"-addr", "a:1", "-rpc-addr", "b:2"}, &out, &errb); code != 2 {
		t.Errorf("both addrs: exit = %d, want 2", code)
	}
	if code := run([]string{"-addr", "a:1", "-interval", "-1s"}, &out, &errb); code != 2 {
		t.Errorf("negative interval: exit = %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
}

func TestOnceHTTP(t *testing.T) {
	rep := sampleReport()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/status" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rep)
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	var out, errb bytes.Buffer
	if code := run([]string{"-addr", addr, "-once"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "collector") || !strings.Contains(out.String(), "DEGRADED") {
		t.Errorf("once output missing table content:\n%s", out.String())
	}
	// Single snapshots never clear the screen.
	if strings.Contains(out.String(), "\x1b[") {
		t.Errorf("-once output contains ANSI escapes:\n%q", out.String())
	}
}

func TestOnceJSON(t *testing.T) {
	rep := sampleReport()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(rep)
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	var out, errb bytes.Buffer
	if code := run([]string{"-addr", addr, "-once", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	var got modules.StatusReport
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("-json output is not one JSON document: %v\n%s", err, out.String())
	}
	if got.Instances[0].ID != "collector" || got.Instances[0].TotalFailures != 7 {
		t.Errorf("-json round-trip = %+v", got.Instances[0])
	}
	if sts := got.Shards["collector"]; len(sts) != 2 || sts[1].OpenBreakers != 1 {
		t.Errorf("-json shard round-trip = %+v", got.Shards)
	}
}

func TestOnceFetchError(t *testing.T) {
	var out, errb bytes.Buffer
	// Reserved port with nothing listening: grab a listener, close it, use
	// its address.
	srv := httptest.NewServer(http.NotFoundHandler())
	addr := strings.TrimPrefix(srv.URL, "http://")
	srv.Close()
	if code := run([]string{"-addr", addr, "-once"}, &out, &errb); code != 1 {
		t.Errorf("unreachable addr: exit = %d, want 1", code)
	}
	if errb.Len() == 0 {
		t.Error("fetch failure produced no stderr diagnostic")
	}
}

// staticView serves a fixed report through the status RPC path.
type staticView struct{ rep modules.StatusReport }

func (v staticView) Instances() []string                        { return nil }
func (v staticView) ModuleOf(string) (core.Module, bool)        { return nil, false }
func (v staticView) SupervisorSnapshots() []core.InstanceHealth { return v.rep.Instances }

func TestOnceRPC(t *testing.T) {
	rep := sampleReport()
	srv, addr, err := modules.ListenStatus("127.0.0.1:0", staticView{rep}, func() time.Time { return rep.Time })
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	var out, errb bytes.Buffer
	if code := run([]string{"-rpc-addr", addr.String(), "-once"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "collector") || !strings.Contains(out.String(), "quarantined") {
		t.Errorf("rpc once output missing table content:\n%s", out.String())
	}
}
