// Command asdf-status is a watch-style operator console for a running asdf
// control node: it polls the status surface at an interval and renders a
// refreshing per-instance / per-node table — supervisor state, breaker
// state, per-shard sweep accounting, sync counters — with deltas since the
// previous poll, so a degrading
// deployment is visible as it degrades rather than at the next post-mortem.
//
// The snapshot comes from either the HTTP endpoint (GET /status on the
// address given to asdf -status-addr) or the native status RPC
// (-status-rpc-addr); the RPC path runs over a supervised ManagedClient, so
// a control node restart shows up as a few failed polls, not a dead console.
//
// Usage:
//
//	asdf-status -addr 127.0.0.1:7070              # watch over HTTP, 2s
//	asdf-status -rpc-addr 127.0.0.1:7071 -interval 1s
//	asdf-status -addr 127.0.0.1:7070 -once        # one snapshot, exit
//	asdf-status -addr 127.0.0.1:7070 -json -once  # machine-readable
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"github.com/asdf-project/asdf/internal/core"
	"github.com/asdf-project/asdf/internal/modules"
	"github.com/asdf-project/asdf/internal/rpc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("asdf-status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	httpAddr := fs.String("addr", "", "control-node status HTTP address (the asdf -status-addr value)")
	rpcAddr := fs.String("rpc-addr", "", "control-node status RPC address (the asdf -status-rpc-addr value)")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	once := fs.Bool("once", false, "fetch and render a single snapshot, then exit")
	asJSON := fs.Bool("json", false, "emit each snapshot as one line of JSON (for scripting)")
	noClear := fs.Bool("no-clear", false, "append refreshes instead of clearing the screen")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*httpAddr == "") == (*rpcAddr == "") {
		fmt.Fprintln(stderr, "asdf-status: exactly one of -addr or -rpc-addr is required (see -h)")
		return 2
	}
	if *interval <= 0 {
		fmt.Fprintln(stderr, "asdf-status: -interval must be positive")
		return 2
	}

	var fetch func() (modules.StatusReport, error)
	if *httpAddr != "" {
		base := "http://" + *httpAddr
		client := &http.Client{Timeout: 10 * time.Second}
		fetch = func() (modules.StatusReport, error) { return fetchHTTP(client, base) }
	} else {
		// The managed client reconnects with backoff across control-node
		// restarts, exactly like the collection plane's node connections.
		mc := rpc.NewManagedClient(*rpcAddr, "asdf-status", rpc.Options{CallTimeout: 10 * time.Second})
		defer func() { _ = mc.Close() }()
		fetch = func() (modules.StatusReport, error) {
			var rep modules.StatusReport
			err := mc.Call(modules.MethodStatus, nil, &rep)
			return rep, err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var prev *modules.StatusReport
	for {
		rep, err := fetch()
		switch {
		case err != nil && *once:
			fmt.Fprintf(stderr, "asdf-status: %v\n", err)
			return 1
		case err != nil:
			fmt.Fprintf(stderr, "asdf-status: %v\n", err)
		case *asJSON:
			line, jerr := json.Marshal(rep)
			if jerr != nil {
				fmt.Fprintf(stderr, "asdf-status: encode: %v\n", jerr)
				return 1
			}
			fmt.Fprintln(stdout, string(line))
			prev = &rep
		default:
			if !*once && !*noClear {
				fmt.Fprint(stdout, "\x1b[H\x1b[2J") // cursor home + clear
			}
			render(stdout, rep, prev, *interval)
			prev = &rep
		}
		if *once {
			return 0
		}
		select {
		case <-ctx.Done():
			return 0
		case <-time.After(*interval):
		}
	}
}

// fetchHTTP reads one /status snapshot.
func fetchHTTP(client *http.Client, base string) (modules.StatusReport, error) {
	var rep modules.StatusReport
	resp, err := client.Get(base + "/status")
	if err != nil {
		return rep, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("GET /status: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, fmt.Errorf("GET /status: bad JSON: %w", err)
	}
	return rep, nil
}

// delta renders "cur" or "cur(+d)" against the previous poll's value.
func delta(cur, prevVal uint64, havePrev bool) string {
	if !havePrev || cur == prevVal {
		return fmt.Sprintf("%d", cur)
	}
	// Counters only move up; a smaller value means the control node
	// restarted, worth flagging as such.
	if cur < prevVal {
		return fmt.Sprintf("%d(reset)", cur)
	}
	return fmt.Sprintf("%d(+%d)", cur, cur-prevVal)
}

// render writes the full console: header, per-instance supervisor table,
// per-node breaker table, and sync counters, with deltas against prev.
func render(w io.Writer, rep modules.StatusReport, prev *modules.StatusReport, interval time.Duration) {
	health := "HEALTHY"
	if !rep.Healthy {
		health = "DEGRADED"
	}
	fmt.Fprintf(w, "asdf-status — %s  %s  (every %s; Δ since last poll)\n\n",
		rep.Time.Format(time.RFC3339), health, interval)

	// A control node running with -state-file reports its crash-safe layer:
	// snapshot freshness, how many restores this state file has seen, and
	// the newest replay watermark (the publish frontier a restart resumes
	// from).
	if rs := rep.Restart; rs != nil {
		age := "-"
		if !rs.LastSnapshotAt.IsZero() {
			age = rep.Time.Sub(rs.LastSnapshotAt).Truncate(time.Millisecond).String()
		}
		wm := "-"
		var newest time.Time
		for _, t := range rs.ReplayWatermarks {
			if t.After(newest) {
				newest = t
			}
		}
		if !newest.IsZero() {
			wm = newest.UTC().Format(time.RFC3339)
		}
		flags := ""
		if rs.LockReclaimed {
			flags += "  lock-reclaimed"
		}
		if rs.SnapshotQuarantined {
			flags += "  snapshot-quarantined"
		}
		if rs.WriteErrors > 0 {
			flags += fmt.Sprintf("  write-errors=%d", rs.WriteErrors)
		}
		fmt.Fprintf(w, "RESTART  restarts=%d  snapshots=%d  snapshot-age=%s  watermark=%s%s\n\n",
			rs.Restarts, rs.SnapshotsWritten, age, wm, flags)
	}

	prevInst := map[string]core.InstanceHealth{}
	if prev != nil {
		for _, ih := range prev.Instances {
			prevInst[ih.ID] = ih
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "INSTANCE\tSTATE\tFAILS\tPANICS\tTIMEOUTS\tERRORS\tQUAR\tREADMIT\tGAPFILL\tLAST FAILURE")
	for _, ih := range rep.Instances {
		prevIH, havePrev := prevInst[ih.ID]
		failsPrev, quarPrev := prevIH.TotalFailures, prevIH.Quarantines
		state := ih.State.String()
		if ih.Wedged {
			state += "+wedged"
		}
		last := ih.LastFailure
		if last == "" {
			last = "-"
		} else if len(last) > 48 {
			last = last[:45] + "..."
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%s\t%d\t%d\t%s\n",
			ih.ID, state,
			delta(ih.TotalFailures, failsPrev, havePrev),
			ih.Panics, ih.Timeouts, ih.Errors,
			delta(ih.Quarantines, quarPrev, havePrev),
			ih.Readmissions, ih.GapFills, last)
	}
	_ = tw.Flush()

	if len(rep.Breakers) > 0 {
		fmt.Fprintln(w, "\nBREAKERS")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "INSTANCE\tNODE\tADDR\tSTATE\tCONNECTED\tSENT B\tRECV B\tFAILS\tRECONNECTS\tLAST ERROR")
		for _, inst := range sortedKeys(rep.Breakers) {
			nodes := rep.Breakers[inst]
			for _, node := range sortedKeys(nodes) {
				h := nodes[node]
				var failsPrev, sentPrev, recvPrev uint64
				havePrev := false
				if prev != nil {
					if ph, ok := prev.Breakers[inst][node]; ok {
						failsPrev = ph.TotalFailures
						sentPrev, recvPrev = ph.BytesSent, ph.BytesReceived
						havePrev = true
					}
				}
				last := h.LastError
				if last == "" {
					last = "-"
				} else if len(last) > 40 {
					last = last[:37] + "..."
				}
				fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%v\t%s\t%s\t%s\t%d\t%s\n",
					inst, node, h.Addr, h.State, h.Connected,
					delta(h.BytesSent, sentPrev, havePrev),
					delta(h.BytesReceived, recvPrev, havePrev),
					delta(h.TotalFailures, failsPrev, havePrev), h.Reconnects, last)
			}
		}
		_ = tw.Flush()
	}

	if len(rep.Shards) > 0 {
		fmt.Fprintln(w, "\nSHARDS")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "INSTANCE\tSHARD\tNODES\tFANOUT\tSWEEPS\tERRORS\tLAST ERRS\tOPEN BRK\tLAST SWEEP")
		for _, inst := range sortedKeys(rep.Shards) {
			for _, st := range rep.Shards[inst] {
				sweepsPrev, errsPrev := uint64(0), uint64(0)
				havePrev := false
				if prev != nil {
					for _, ps := range prev.Shards[inst] {
						if ps.Shard == st.Shard {
							sweepsPrev, errsPrev = ps.Sweeps, ps.Errors
							havePrev = true
							break
						}
					}
				}
				fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%s\t%d\t%d\t%.1fms\n",
					inst, st.Shard, st.Nodes, st.Fanout,
					delta(st.Sweeps, sweepsPrev, havePrev),
					delta(st.Errors, errsPrev, havePrev),
					st.LastErrors, st.OpenBreakers, st.LastSweepSeconds*1000)
			}
		}
		_ = tw.Flush()
	}

	if len(rep.Leaders) > 0 {
		fmt.Fprintln(w, "\nLEADERS")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "INSTANCE\tLEADER\tRANGE\tNODES\tWIRE\tCONNECTED\tPARTIALS\tERRORS\tRECONN\tLDR SWEEPS\tLDR ERRS\tLDR BRK")
		for _, inst := range sortedKeys(rep.Leaders) {
			for _, ls := range rep.Leaders[inst] {
				var partialsPrev, errsPrev uint64
				havePrev := false
				if prev != nil {
					for _, ps := range prev.Leaders[inst] {
						if ps.Addr == ls.Addr {
							partialsPrev, errsPrev = ps.Partials, ps.Errors
							havePrev = true
							break
						}
					}
				}
				connected := "-"
				if ls.Health != nil {
					connected = fmt.Sprintf("%v", ls.Health.Connected)
				}
				fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%s\t%s\t%s\t%d\t%d\t%d\t%d\n",
					inst, ls.Addr, ls.Range, ls.Nodes, ls.Wire, connected,
					delta(ls.Partials, partialsPrev, havePrev),
					delta(ls.Errors, errsPrev, havePrev),
					ls.Restarts, ls.LeaderSweeps, ls.LeaderNodeErrors, ls.LeaderOpenBreakers)
			}
		}
		_ = tw.Flush()
	}

	if len(rep.Ibuffer) > 0 {
		fmt.Fprintln(w, "\nIBUFFER")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "INSTANCE\tSIZE\tFORWARDED\tDROPPED")
		for _, inst := range sortedKeys(rep.Ibuffer) {
			ib := rep.Ibuffer[inst]
			var fwdPrev, droppedPrev uint64
			havePrev := false
			if prev != nil {
				if pb, ok := prev.Ibuffer[inst]; ok {
					fwdPrev, droppedPrev = pb.Forwarded, pb.Dropped
					havePrev = true
				}
			}
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", inst, ib.Size,
				delta(ib.Forwarded, fwdPrev, havePrev),
				delta(ib.Dropped, droppedPrev, havePrev))
		}
		_ = tw.Flush()
	}

	if len(rep.Sync) > 0 {
		fmt.Fprintln(w, "\nSYNC")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "INSTANCE\tPARTIAL\tDROPPED\tMISSING BY NODE")
		for _, inst := range sortedKeys(rep.Sync) {
			s := rep.Sync[inst]
			partialPrev, droppedPrev := uint64(0), uint64(0)
			havePrev := false
			if prev != nil {
				if ps, ok := prev.Sync[inst]; ok {
					partialPrev, droppedPrev = ps.Partial, ps.Dropped
					havePrev = true
				}
			}
			var missing []string
			for _, n := range sortedKeys(s.MissingByNode) {
				if v := s.MissingByNode[n]; v > 0 {
					missing = append(missing, fmt.Sprintf("%s:%d", n, v))
				}
			}
			miss := "-"
			if len(missing) > 0 {
				miss = strings.Join(missing, " ")
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", inst,
				delta(s.Partial, partialPrev, havePrev),
				delta(s.Dropped, droppedPrev, havePrev), miss)
		}
		_ = tw.Flush()
	}
}

// sortedKeys returns m's keys in lexical order, keeping the table layout
// stable across refreshes.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
