package asdf_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	asdf "github.com/asdf-project/asdf"
	"github.com/asdf-project/asdf/internal/hadoopsim"
)

// TestPublicAPIQuickstart exercises the documented public surface end to
// end: build an Env over a simulated node, parse a configuration, run the
// engine in step mode, and observe printed samples.
func TestPublicAPIQuickstart(t *testing.T) {
	cluster, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	env := asdf.NewEnv()
	env.Procfs["node1"] = cluster.Slave(0)
	env.Clock = cluster.Now
	var out bytes.Buffer
	env.AlarmWriter = &out

	cfg, err := asdf.ParseConfigString(`
[sadc]
id = collector
node = node1
period = 1

[print]
id = sink
only_nonzero = false
input[a] = collector.output0
`)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := asdf.NewEngine(asdf.NewRegistry(env), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		cluster.Tick()
		if err := eng.Tick(cluster.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(out.String(), "node=node1") {
		t.Errorf("no samples printed: %q", out.String())
	}
}

// TestPublicAPICustomModule registers a user module alongside the built-in
// set, the documented extension path.
func TestPublicAPICustomModule(t *testing.T) {
	env := asdf.NewEnv()
	reg := asdf.NewRegistry(env)
	reg.Register("ticker", func() asdf.Module { return &tickerModule{} })

	cfg, err := asdf.ParseConfigString(`
[ticker]
id = src
period = 1

[print]
id = sink
only_nonzero = false
input[a] = src.out
`)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := asdf.NewEngine(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		if err := eng.Tick(start.Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	outs := eng.OutputPortsOf("src")
	if len(outs) != 1 || outs[0].Published() != 3 {
		t.Errorf("custom module published %d samples", outs[0].Published())
	}
}

type tickerModule struct {
	out *asdf.OutputPort
	n   float64
}

func (m *tickerModule) Init(ctx *asdf.InitContext) error {
	var err error
	if m.out, err = ctx.NewOutput("out", asdf.Origin{Source: "ticker"}); err != nil {
		return err
	}
	return ctx.SchedulePeriodic(time.Second)
}

func (m *tickerModule) Run(ctx *asdf.RunContext) error {
	m.n++
	m.out.Publish(asdf.Sample{Time: ctx.Now, Values: []float64{m.n}})
	return nil
}

// TestPublicAPIModelRoundTrip trains, saves, and loads a model through the
// public API.
func TestPublicAPIModelRoundTrip(t *testing.T) {
	points := [][]float64{{1, 2}, {3, 4}, {100, 200}, {110, 190}}
	model, err := asdf.TrainModel(points, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/m.json"
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := asdf.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumStates() != 2 {
		t.Errorf("NumStates = %d", loaded.NumStates())
	}
	s1, err := model.Classify([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := loaded.Classify([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("classification changed after round trip: %d vs %d", s1, s2)
	}
}
