// Benchmarks regenerating every table and figure of the paper's evaluation
// (one bench per exhibit), plus component micro-benchmarks. Run:
//
//	go test -bench=. -benchmem .
//
// The per-exhibit benches time the analysis replay over pre-collected
// monitoring traces and report the headline numbers of each exhibit as
// custom metrics, so a bench run doubles as a reproduction run. The cmd/
// asdf-bench binary prints the same exhibits as full paper-vs-measured
// tables.
package asdf_test

import (
	"sync"
	"testing"

	"github.com/asdf-project/asdf/internal/analysis"
	"github.com/asdf-project/asdf/internal/eval"
	"github.com/asdf-project/asdf/internal/hadoopsim"
)

// benchState holds the expensive shared fixtures: the trained model, a
// problem-free trace, and one trace per fault.
type benchState struct {
	opts        eval.Options
	model       *analysis.Model
	cleanTrace  *eval.Trace
	faultTraces map[hadoopsim.FaultKind]*eval.Trace
}

var (
	benchOnce sync.Once
	bench     *benchState
	benchErr  error
)

func getBench(b *testing.B) *benchState {
	b.Helper()
	benchOnce.Do(func() {
		opts := eval.DefaultOptions()
		st := &benchState{opts: opts, faultTraces: make(map[hadoopsim.FaultKind]*eval.Trace)}
		st.model, benchErr = eval.TrainDefaultModel(opts.Slaves, opts.Seed, opts.TrainSeconds, opts.NumStates)
		if benchErr != nil {
			return
		}
		st.cleanTrace, benchErr = eval.CollectTrace(eval.TraceConfig{
			Slaves: opts.Slaves, Seed: opts.Seed + 100, WarmupSec: opts.WarmupSec,
			DurationSec: opts.CleanDuration, Fault: hadoopsim.FaultNone,
		}, st.model)
		if benchErr != nil {
			return
		}
		for fi, fault := range hadoopsim.TableTwoFaults {
			st.faultTraces[fault], benchErr = eval.CollectTrace(eval.TraceConfig{
				Slaves: opts.Slaves, Seed: opts.Seed + 200 + int64(fi),
				WarmupSec: opts.WarmupSec, DurationSec: opts.FaultDuration,
				Fault: fault, FaultNode: opts.FaultNode, InjectAtSec: opts.InjectAtSec,
			}, st.model)
			if benchErr != nil {
				return
			}
		}
		bench = st
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return bench
}

// BenchmarkTable3MonitoringOverhead regenerates Table 3: the CPU cost of
// each monitoring process per 1 Hz collection iteration. The reported
// cpu_pct_* metrics are the table's %CPU column.
func BenchmarkTable3MonitoringOverhead(b *testing.B) {
	var rows []eval.OverheadRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = eval.MeasureTable3(100)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.CPUPct, "cpu_pct_"+r.Process)
	}
}

// BenchmarkTable4RPCBandwidth regenerates Table 4: static and steady-state
// wire bytes of each RPC type, reported as kB and kB/s custom metrics.
func BenchmarkTable4RPCBandwidth(b *testing.B) {
	var rows []eval.BandwidthRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = eval.MeasureTable4(30)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.RPCType == "TCP Sum" {
			b.ReportMetric(r.StaticKB, "static_kB_sum")
			b.ReportMetric(r.PerIterKBs, "kBps_sum")
		}
	}
}

// BenchmarkFigure6aBlackBoxFPR regenerates Figure 6(a): the black-box
// false-positive sweep over a problem-free trace. Reported metrics give the
// curve's endpoints and the FPR at the paper's chosen operating region.
func BenchmarkFigure6aBlackBoxFPR(b *testing.B) {
	st := getBench(b)
	var points []eval.SweepPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		points, err = sweepBBOn(st, eval.Figure6aThresholds())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].FPR*100, "fpr_pct_at_0")
	for _, p := range points {
		if p.Param == 55 {
			b.ReportMetric(p.FPR*100, "fpr_pct_at_55")
		}
	}
}

// sweepBBOn replays the clean trace for each threshold.
func sweepBBOn(st *benchState, thresholds []float64) ([]eval.SweepPoint, error) {
	out := make([]eval.SweepPoint, 0, len(thresholds))
	for _, th := range thresholds {
		p := eval.DefaultParams(st.model.NumStates())
		p.BBThreshold = th
		verdicts, err := eval.EvaluateBB(st.cleanTrace, p)
		if err != nil {
			return nil, err
		}
		o := eval.Score(st.cleanTrace, verdicts, p)
		out = append(out, eval.SweepPoint{Param: th, FPR: o.FalsePositiveRate})
	}
	return out, nil
}

// BenchmarkFigure6bWhiteBoxFPR regenerates Figure 6(b): the white-box
// false-positive sweep over k.
func BenchmarkFigure6bWhiteBoxFPR(b *testing.B) {
	st := getBench(b)
	var atKnee float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range eval.Figure6bKs() {
			p := eval.DefaultParams(st.model.NumStates())
			p.WBK = k
			verdicts, err := eval.EvaluateWB(st.cleanTrace, p)
			if err != nil {
				b.Fatal(err)
			}
			o := eval.Score(st.cleanTrace, verdicts, p)
			if k == 3 {
				atKnee = o.FalsePositiveRate
			}
		}
	}
	b.ReportMetric(atKnee*100, "fpr_pct_at_k3")
}

// BenchmarkFigure7aBalancedAccuracy regenerates Figure 7(a): per-fault
// balanced accuracy under all three approaches. The reported metrics are
// the paper's headline means (paper: bb 71%, wb 78%, combined 80%).
func BenchmarkFigure7aBalancedAccuracy(b *testing.B) {
	st := getBench(b)
	params := eval.DefaultParams(st.model.NumStates())
	var bbMean, wbMean, cbMean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bbSum, wbSum, cbSum float64
		for _, tr := range st.faultTraces {
			bb, err := eval.EvaluateBB(tr, params)
			if err != nil {
				b.Fatal(err)
			}
			wb, err := eval.EvaluateWB(tr, params)
			if err != nil {
				b.Fatal(err)
			}
			cb, err := eval.CombineVerdicts(bb, wb)
			if err != nil {
				b.Fatal(err)
			}
			bbSum += eval.Score(tr, bb, params).BalancedAccuracy
			wbSum += eval.Score(tr, wb, params).BalancedAccuracy
			cbSum += eval.Score(tr, cb, params).BalancedAccuracy
		}
		n := float64(len(st.faultTraces))
		bbMean, wbMean, cbMean = bbSum/n, wbSum/n, cbSum/n
	}
	b.ReportMetric(bbMean*100, "ba_pct_blackbox")
	b.ReportMetric(wbMean*100, "ba_pct_whitebox")
	b.ReportMetric(cbMean*100, "ba_pct_combined")
}

// BenchmarkFigure7bLatency regenerates Figure 7(b): fingerpointing latency
// per fault under the combined approach. Reported metrics give the fastest
// and slowest fault-to-alarm latencies (the paper's story: ~3 windows for
// resource faults, much longer for the dormant reduce faults).
func BenchmarkFigure7bLatency(b *testing.B) {
	st := getBench(b)
	params := eval.DefaultParams(st.model.NumStates())
	var fastest, slowest float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fastest, slowest = 1e18, -1
		for _, tr := range st.faultTraces {
			verdicts, err := eval.Verdicts(tr, eval.ApproachCombined, params)
			if err != nil {
				b.Fatal(err)
			}
			o := eval.Score(tr, verdicts, params)
			if o.LatencySec >= 0 {
				if o.LatencySec < fastest {
					fastest = o.LatencySec
				}
				if o.LatencySec > slowest {
					slowest = o.LatencySec
				}
			}
		}
	}
	b.ReportMetric(fastest, "latency_s_fastest")
	b.ReportMetric(slowest, "latency_s_slowest")
}

// BenchmarkSimulatorTick measures the simulator's per-tick cost at the
// default experiment scale.
func BenchmarkSimulatorTick(b *testing.B) {
	c, err := hadoopsim.NewCluster(hadoopsim.DefaultConfig(8, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick()
	}
}

// BenchmarkModelClassify measures one black-box 1-NN classification on the
// allocation-free ClassifyInto path (the knn module's steady state); the
// reported allocs/op should be 0.
func BenchmarkModelClassify(b *testing.B) {
	st := getBench(b)
	series, err := eval.CollectFaultFreeSeries(2, 3, 2)
	if err != nil {
		b.Fatal(err)
	}
	vec := series[1][0]
	scratch := make([]float64, st.model.ScratchLen(vec))
	if _, err := st.model.ClassifyInto(vec, scratch); err != nil {
		b.Fatal(err) // warm the flattened centroid cache outside the loop
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.model.ClassifyInto(vec, scratch); err != nil {
			b.Fatal(err)
		}
	}
}
